//! Deterministic simulators: the analytic Table 2 model and the
//! virtual-clock **fleet simulator** that drives the real reactor.
//!
//! Two engines live here, at different levels of fidelity:
//!
//! 1. **The analytic model** ([`simulate`]) replays the *shape* of a
//!    deployment — per-device service times, one-way latency, the
//!    batch-size-limited dispatch policy — over an abstract event queue. It
//!    regenerates Table 2, the Figure 4 deployment example and the §5.5
//!    batching sweep without hardware, but it models the master; it does not
//!    run it.
//! 2. **The fleet simulator** ([`simulate_fleet`]) runs the *actual* stack —
//!    [`ShardedLender`](pando_pull_stream::shard::ShardedLender), the
//!    [reactor](crate::reactor) driver state machines, the real wire
//!    protocol over [`pando_netsim::channel`] endpoints — under a virtual
//!    [`Clock`](pando_netsim::sim::Clock) and a single-threaded scheduler.
//!    No reactor threads, no pump threads, no volunteer threads: one loop
//!    steps the reactor's ready queue, pumps starved shards synchronously,
//!    polls simulated volunteers, and advances virtual time to the earliest
//!    pending deadline (channel delivery, crash suspicion, heartbeat).
//!    Every run from the same seed — including its crash schedule, shard
//!    claims, heartbeat suppressions and merged output order — is identical
//!    byte for byte, so fault scenarios become replayable artefacts and
//!    flaky-hunt turns into seed bisection.
//!
//! # Examples
//!
//! Two same-seed runs produce identical canonical traces:
//!
//! ```
//! use pando_core::sim::{simulate_fleet, FleetParams};
//!
//! let params = FleetParams::new(7, 4, 24);
//! let a = simulate_fleet(&params);
//! let b = simulate_fleet(&params);
//! assert_eq!(a.canonical_trace(), b.canonical_trace());
//! assert_eq!(a.output_order, (0..24).collect::<Vec<u64>>(), "global order survives");
//! ```

use crate::config::PandoConfig;
use crate::master::Pando;
use crate::protocol::Message;
use bytes::Bytes;
use pando_netsim::channel::{ChannelConfig, Endpoint, RecvError};
use pando_netsim::codec::Record;
use pando_netsim::sim::{EventQueue, SimTime};
use pando_pull_stream::source::{from_iter, Source};
use pando_pull_stream::{Answer, Request};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct SimDevice {
    /// Device name (used in the report).
    pub name: String,
    /// Time the device needs to process one task.
    pub service_time: Duration,
    /// When the device joins the deployment.
    pub joins_at: Duration,
    /// When the device crashes, if ever.
    pub crashes_at: Option<Duration>,
}

impl SimDevice {
    /// A device that participates from the start and never crashes.
    pub fn steady(name: impl Into<String>, service_time: Duration) -> Self {
        Self { name: name.into(), service_time, joins_at: Duration::ZERO, crashes_at: None }
    }
}

/// Parameters of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimParams {
    /// Number of values in flight allowed per device (the batch size).
    pub batch_size: usize,
    /// One-way network latency between the master and every device.
    pub latency: Duration,
    /// Length of the measured run.
    pub duration: Duration,
}

impl SimParams {
    /// Parameters with the given batch size, latency and five simulated
    /// minutes of measurement, the window used by the paper.
    pub fn paper_window(batch_size: usize, latency: Duration) -> Self {
        Self { batch_size, latency, duration: Duration::from_secs(300) }
    }
}

/// Throughput of one simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct SimDeviceReport {
    /// Device name.
    pub name: String,
    /// Number of tasks the device completed within the window.
    pub completed: u64,
    /// Average throughput in tasks per second over the window.
    pub throughput: f64,
    /// Fraction of the window the device spent computing (0 to 1).
    pub utilization: f64,
}

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-device results, in the order the devices were given.
    pub devices: Vec<SimDeviceReport>,
    /// Length of the simulated window.
    pub duration: Duration,
}

impl SimReport {
    /// Total throughput across devices, in tasks per second.
    pub fn total_throughput(&self) -> f64 {
        self.devices.iter().map(|d| d.throughput).sum()
    }

    /// Total number of completed tasks.
    pub fn total_completed(&self) -> u64 {
        self.devices.iter().map(|d| d.completed).sum()
    }

    /// Share of the total contributed by the device at `index`, in percent.
    pub fn share(&self, index: usize) -> f64 {
        let total = self.total_completed();
        if total == 0 {
            0.0
        } else {
            100.0 * self.devices[index].completed as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The device joins: the master sends it an initial batch.
    Join(usize),
    /// A task arrives at the device.
    TaskArrives(usize),
    /// The device finishes its current task.
    TaskDone(usize),
    /// The result reaches the master, which releases one more task.
    ResultAtMaster(usize),
    /// The device crashes.
    Crash(usize),
}

#[derive(Debug, Default, Clone)]
struct DeviceState {
    queued: u64,
    busy: bool,
    crashed: bool,
    completed_in_window: u64,
    busy_time: Duration,
}

/// Simulates a deployment over an infinite input stream (the usual Table 2
/// setup: the workload never starves the devices) and reports per-device
/// throughput over the window.
///
/// # Panics
///
/// Panics if `params.batch_size` is zero.
pub fn simulate(devices: &[SimDevice], params: &SimParams) -> SimReport {
    assert!(params.batch_size > 0, "batch size must be at least 1");
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut states: Vec<DeviceState> = vec![DeviceState::default(); devices.len()];
    let end = SimTime::ZERO + params.duration;

    for (i, device) in devices.iter().enumerate() {
        queue.schedule(SimTime::ZERO + device.joins_at, Event::Join(i));
        if let Some(crash) = device.crashes_at {
            queue.schedule(SimTime::ZERO + crash, Event::Crash(i));
        }
    }

    while let Some(time) = queue.peek_time() {
        if time > end {
            break;
        }
        let (now, event) = queue.pop().expect("peeked event exists");
        match event {
            Event::Join(i) => {
                for _ in 0..params.batch_size {
                    queue.schedule(now + params.latency, Event::TaskArrives(i));
                }
            }
            Event::TaskArrives(i) => {
                if states[i].crashed {
                    continue;
                }
                states[i].queued += 1;
                maybe_start(&mut queue, &mut states, devices, i, now);
            }
            Event::TaskDone(i) => {
                if states[i].crashed {
                    continue;
                }
                states[i].busy = false;
                states[i].completed_in_window += 1;
                states[i].busy_time += devices[i].service_time;
                queue.schedule(now + params.latency, Event::ResultAtMaster(i));
                maybe_start(&mut queue, &mut states, devices, i, now);
            }
            Event::ResultAtMaster(i) => {
                // The Limiter releases one more value for this device; the
                // master reads it lazily from the (infinite) input and sends
                // it immediately.
                if !states[i].crashed {
                    queue.schedule(now + params.latency, Event::TaskArrives(i));
                }
            }
            Event::Crash(i) => {
                states[i].crashed = true;
                states[i].queued = 0;
                states[i].busy = false;
                // In the real system the values it held are re-lent to other
                // devices; with an infinite input this does not change the
                // other devices' throughput, so the simulator simply drops
                // them.
            }
        }
    }

    let window = params.duration.as_secs_f64();
    SimReport {
        devices: devices
            .iter()
            .zip(&states)
            .map(|(device, state)| SimDeviceReport {
                name: device.name.clone(),
                completed: state.completed_in_window,
                throughput: state.completed_in_window as f64 / window,
                utilization: (state.busy_time.as_secs_f64() / window).min(1.0),
            })
            .collect(),
        duration: params.duration,
    }
}

fn maybe_start(
    queue: &mut EventQueue<Event>,
    states: &mut [DeviceState],
    devices: &[SimDevice],
    i: usize,
    now: SimTime,
) {
    if !states[i].busy && !states[i].crashed && states[i].queued > 0 {
        states[i].queued -= 1;
        states[i].busy = true;
        queue.schedule(now + devices[i].service_time, Event::TaskDone(i));
    }
}

// ---------------------------------------------------------------------------
// The virtual-clock fleet simulator: the real reactor, deterministically.
// ---------------------------------------------------------------------------

/// Parameters of one deterministic fleet run. Everything a run does —
/// per-volunteer service times, the crash schedule, channel jitter — derives
/// from `seed`, so the parameters fully determine the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetParams {
    /// Master seed: drives channel jitter, service times and the fault
    /// schedule.
    pub seed: u64,
    /// Number of simulated volunteer devices.
    pub volunteers: usize,
    /// Number of input values to process.
    pub tasks: u64,
    /// Fraction of volunteers that crash mid-run (crash-stop, at a
    /// seed-derived virtual instant). Volunteer 0 never crashes, so the
    /// stream always completes.
    pub crash_fraction: f64,
    /// Whether starved kicks are wake-limited
    /// ([`ReactorConfig::bounded_wakes`](crate::config::ReactorConfig::bounded_wakes),
    /// the default) or broadcast to every parked driver. Exposed so the sim
    /// can A/B the wake discipline exactly: same seed, diff the poll
    /// counters.
    pub bounded_wakes: bool,
    /// Scripted link flaps, the deterministic replay of
    /// [`FaultPlan::Disconnect`](pando_netsim::fault::FaultPlan::Disconnect):
    /// each `(volunteer, at_us, down_for_us)` pauses that volunteer's link
    /// in both directions from virtual instant `at_us` for `down_for_us`
    /// microseconds. A flap delays frames, it loses nothing — the sim twin
    /// of a session volunteer reconnecting within its grace window — so a
    /// flapped run produces the same output order and digest as a fault-free
    /// one and never fires the crash re-lend path. Empty by default, and an
    /// empty schedule leaves the canonical trace byte-identical to builds
    /// that predate flaps.
    pub flaps: Vec<(usize, u64, u64)>,
    /// Explicit fleet script replacing the seed-derived schedule (see
    /// [`FleetScript`]). `None` — the default, and what every pre-scenario
    /// trace was recorded with — keeps the seed-derived path byte-identical.
    pub script: Option<FleetScript>,
}

/// One scripted volunteer of a [`FleetScript`]: which link it sits on, how
/// fast it computes, and when it joins, leaves or crashes.
#[derive(Debug, Clone, PartialEq)]
pub struct VolunteerSpec {
    /// Scenario group this volunteer belongs to (used by partition events
    /// and in the trace; carries no behaviour of its own).
    pub group: String,
    /// Virtual compute time per task record.
    pub service: Duration,
    /// The volunteer's own link profile, including its jitter seed and the
    /// [`ChannelConfig::loss`] knob — a phone on lossy WAN can sit next to a
    /// laptop on the office LAN.
    pub channel: ChannelConfig,
    /// When the volunteer opens its channel, measured from the run origin.
    /// [`Duration::ZERO`] joins before the input stream starts.
    pub joins_at: Duration,
    /// When the volunteer leaves cleanly (goodbye + close: the master
    /// re-lends its outstanding tasks without waiting for a failure
    /// timeout), if ever.
    pub leaves_at: Option<Duration>,
    /// When the volunteer crash-stops (the failure detector fires after the
    /// channel's failure timeout, then the crash re-lend path runs), if
    /// ever.
    pub crash_at: Option<Duration>,
}

/// A fully explicit fleet script: per-volunteer links and churn instants
/// plus group-scoped partitions, executed by [`simulate_fleet`] instead of
/// the seed-derived schedule. Usually loaded from a checked-in
/// `scenarios/*.toml` file via [`crate::scenario`], but constructible by
/// hand for tests.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScript {
    /// Scenario name, echoed as the first trace line.
    pub name: String,
    /// One spec per volunteer; the index in this vector is the volunteer id
    /// used by the trace, partitions and [`FleetParams::flaps`].
    pub volunteers: Vec<VolunteerSpec>,
    /// Partition events: `(members, starts_at, heals_at)` pauses every
    /// member's link in both directions from `starts_at` until `heals_at`
    /// (offsets from the run origin). Frames are delayed, never lost, and
    /// the failure detector never fires — the scripted twin of a transient
    /// network split that heals within the session grace window.
    pub partitions: Vec<(Vec<usize>, Duration, Duration)>,
    /// Run the input through a source whose non-blocking asks always report
    /// "would block" (the blocking pull still answers immediately): the
    /// deterministic stand-in for interactive stdin. Drivers' fast-path asks
    /// fail and the reactor's input pump must deliver — exactly the path
    /// whose kick/ask busy loop the `wasted_polls` budget guards.
    pub interactive_input: bool,
}

impl FleetParams {
    /// Parameters with the default crash fraction (15 % of the fleet).
    pub fn new(seed: u64, volunteers: usize, tasks: u64) -> Self {
        Self {
            seed,
            volunteers,
            tasks,
            crash_fraction: 0.15,
            bounded_wakes: true,
            flaps: Vec::new(),
            script: None,
        }
    }

    /// Returns the parameters with a different crash fraction.
    ///
    /// # Panics
    ///
    /// Panics if `crash_fraction` is outside `[0, 1]`.
    pub fn with_crash_fraction(mut self, crash_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&crash_fraction), "crash fraction must be within [0, 1]");
        self.crash_fraction = crash_fraction;
        self
    }

    /// Returns the parameters with bounded starved-kicks switched on or off
    /// (broadcast kicks reproduce the pre-wake-limited reactor for A/B
    /// comparison).
    pub fn with_bounded_wakes(mut self, bounded_wakes: bool) -> Self {
        self.bounded_wakes = bounded_wakes;
        self
    }

    /// Returns the parameters with a scripted link-flap schedule (see
    /// [`FleetParams::flaps`]).
    ///
    /// # Panics
    ///
    /// Panics if a flap names a volunteer outside the fleet.
    pub fn with_flaps(mut self, flaps: Vec<(usize, u64, u64)>) -> Self {
        for (v, _, _) in &flaps {
            assert!(*v < self.volunteers, "flap names volunteer {v} outside the fleet");
        }
        self.flaps = flaps;
        self
    }

    /// Returns the parameters driven by an explicit [`FleetScript`] instead
    /// of the seed-derived schedule: `volunteers` becomes the script's fleet
    /// size and the seed-derived crash draw is disabled (scripts declare
    /// their crashes explicitly). The seed keeps naming the run — each
    /// spec's channel carries its own jitter seed.
    pub fn with_script(mut self, script: FleetScript) -> Self {
        assert!(!script.volunteers.is_empty(), "a fleet script needs at least one volunteer");
        self.volunteers = script.volunteers.len();
        self.crash_fraction = 0.0;
        self.script = Some(script);
        self
    }
}

/// Outcome of one deterministic fleet run. All fields except
/// [`FleetReport::wall_elapsed`] are pure functions of the
/// [`FleetParams`]; [`FleetReport::canonical_trace`] renders exactly those,
/// so two same-seed runs compare byte for byte.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The parameters the run was built from.
    pub params: FleetParams,
    /// The event trace: volunteer joins, task frames received, replies,
    /// crashes, goodbyes and the output completion, each stamped with its
    /// virtual time in microseconds.
    pub trace: Vec<String>,
    /// The decoded task index of every output value, in emission order.
    /// Always `0..tasks`: crashes re-lend, the merge stage restores order.
    pub output_order: Vec<u64>,
    /// FNV-1a digest over the raw output payload bytes, in order.
    pub output_digest: u64,
    /// Canonical per-device rows of the
    /// [`ThroughputMeter`](crate::metrics::ThroughputMeter)
    /// (tasks, wire bytes, wire frames, heartbeats) — the deterministic
    /// columns only; wall-time-derived rates are excluded.
    pub meter_rows: Vec<String>,
    /// Canonical per-shard dispatch rows (borrows and accepted results).
    pub shard_rows: Vec<String>,
    /// The sharded lender's claim log: chunk index → owning shard.
    pub claim_log: Vec<usize>,
    /// The reactor's final scheduling counters. Deterministic under the
    /// single-threaded scheduler, so they participate in the canonical
    /// trace: a diverging poll or wake-up count pinpoints scheduler
    /// nondeterminism even when the output still matches.
    pub reactor: crate::reactor::ReactorStats,
    /// Number of volunteers that actually crashed during the run (scheduled
    /// crash instants landing after a volunteer finished do not fire).
    pub crashed: u64,
    /// Total lost-and-re-sent frame transmissions across every volunteer
    /// link, both directions ([`ChannelConfig::loss`]). Part of the
    /// canonical trace only under a script — seed-derived runs predate the
    /// loss knob and keep their traces byte-identical.
    pub retransmits: u64,
    /// Virtual time the run spanned.
    pub virtual_elapsed: Duration,
    /// Real time the simulation took (not part of the canonical trace).
    pub wall_elapsed: Duration,
}

impl FleetReport {
    /// Renders every deterministic artefact of the run — the event trace,
    /// the output order and digest, the shard claim log, the meter and
    /// shard rows — into one string. Two runs with equal [`FleetParams`]
    /// produce byte-identical canonical traces; a mismatch pinpoints the
    /// first nondeterministic event.
    pub fn canonical_trace(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "params seed={} volunteers={} tasks={} crash_fraction={} bounded_wakes={}\n",
            self.params.seed,
            self.params.volunteers,
            self.params.tasks,
            self.params.crash_fraction,
            self.params.bounded_wakes
        ));
        if !self.params.flaps.is_empty() {
            // Only emitted for a non-empty schedule, so fault-free traces
            // stay byte-identical to builds that predate link flaps.
            let flaps: Vec<String> = self
                .params
                .flaps
                .iter()
                .map(|(v, at, down)| format!("v{v}@{at}us+{down}us"))
                .collect();
            out.push_str(&format!("flaps {}\n", flaps.join(",")));
        }
        for line in &self.trace {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!(
            "output n={} digest={:016x}\n",
            self.output_order.len(),
            self.output_digest
        ));
        let order: Vec<String> = self.output_order.iter().map(u64::to_string).collect();
        out.push_str(&format!("output_order {}\n", order.join(",")));
        let claims: Vec<String> = self.claim_log.iter().map(usize::to_string).collect();
        out.push_str(&format!("claim_log {}\n", claims.join(",")));
        for row in &self.meter_rows {
            out.push_str(row);
            out.push('\n');
        }
        for row in &self.shard_rows {
            out.push_str(row);
            out.push('\n');
        }
        if self.params.script.is_some() {
            out.push_str(&format!("loss retransmits={}\n", self.retransmits));
        }
        out.push_str(&format!(
            "reactor registered={} polls={} wakeups={} timer_fires={} prefetches={} \
             shards={} hops={} max_ready_depth={} wasted_polls={} kicks_sent={} \
             kicks_suppressed={} crash_relends={}\n",
            self.reactor.registered,
            self.reactor.polls,
            self.reactor.wakeups,
            self.reactor.timer_fires,
            self.reactor.pump_prefetches,
            self.reactor.shards,
            self.reactor.shard_hops,
            self.reactor.max_ready_depth,
            self.reactor.wasted_polls,
            self.reactor.kicks_sent,
            self.reactor.kicks_suppressed,
            self.reactor.crash_relends
        ));
        out.push_str(&format!(
            "crashed={} virtual_elapsed_us={}\n",
            self.crashed,
            self.virtual_elapsed.as_micros()
        ));
        out
    }
}

/// A simulated volunteer: the state machine the engine drives instead of a
/// worker thread. It mirrors [`run_worker_on`](crate::worker::run_worker_on) —
/// decode task frames, apply the processing function, reply in kind — but
/// computation *time* is virtual: a reply is scheduled `service × records`
/// after the device becomes free.
struct SimVolunteer {
    /// `None` until the volunteer joins (script volunteers may join
    /// mid-run); the seed-derived path opens every channel up front.
    endpoint: Option<Endpoint<Message>>,
    service: Duration,
    busy_until: Instant,
    /// Earliest scheduled re-poll for a frame still in (virtual) flight.
    repoll_at: Option<Instant>,
    /// Reply frames scheduled but not yet delivered. A real worker replies
    /// before it can observe the master's close, so the simulated volunteer
    /// defers its goodbye until this drains.
    pending_replies: usize,
    done: bool,
    crashed: bool,
    processed: u64,
}

/// An engine event at a virtual instant; `seq` breaks ties FIFO so the
/// schedule order is total.
struct Timed {
    at: Instant,
    seq: u64,
    ev: Ev,
}

enum Ev {
    /// Deliver the prepared reply frames of volunteer `v` (its virtual
    /// compute finished).
    Reply { v: usize, frames: Vec<Message> },
    /// Crash volunteer `v` (crash-stop; scripted by the fault schedule).
    Crash { v: usize },
    /// Pause volunteer `v`'s link for `down_for` (a scripted transient
    /// disconnect; frames are delayed, never lost).
    Flap { v: usize, down_for: Duration },
    /// Re-poll volunteer `v`: a frame buffered on its endpoint matures now.
    Repoll { v: usize },
    /// Volunteer `v` joins mid-run: open its scripted channel and register
    /// it with the master (which starts lending it tasks immediately).
    Join { v: usize },
    /// Volunteer `v` leaves cleanly: goodbye + close, outstanding tasks are
    /// re-lent without a failure timeout.
    Leave { v: usize },
    /// Pause every member's link in both directions until `until` (a
    /// scripted partition; heals without tripping the failure detector).
    Partition { members: Vec<usize>, until: Instant },
}

impl PartialEq for Timed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timed {}
impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The engine's event heap plus the wake list volunteers' endpoint wakers
/// feed.
struct Engine {
    queue: BinaryHeap<Reverse<Timed>>,
    next_seq: u64,
    /// Volunteers whose endpoint waker fired since they were last polled.
    woken: Arc<Mutex<VecDeque<usize>>>,
    /// Coalescing flags: a volunteer already on the wake list is not pushed
    /// again.
    queued: Arc<Vec<AtomicBool>>,
}

impl Engine {
    fn schedule(&mut self, at: Instant, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Timed { at, seq, ev }));
    }

    fn pop_due(&mut self, now: Instant) -> Option<Ev> {
        match self.queue.peek() {
            Some(Reverse(timed)) if timed.at <= now => {
                Some(self.queue.pop().expect("peeked entry present").0.ev)
            }
            _ => None,
        }
    }

    fn next_at(&self) -> Option<Instant> {
        self.queue.peek().map(|Reverse(timed)| timed.at)
    }

    fn pop_woken(&self) -> Option<usize> {
        let v = self.woken.lock().pop_front()?;
        self.queued[v].store(false, Ordering::SeqCst);
        Some(v)
    }
}

/// The processing function every simulated volunteer applies: `3x + 1` over
/// the task's little-endian `u64` payload. Trivial on purpose — the engine
/// simulates *coordination*, and compute cost is modelled by the service
/// time, not by burning host cycles.
fn process_payload(payload: &Bytes) -> Bytes {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&payload[..8]);
    let x = u64::from_le_bytes(buf);
    Bytes::copy_from_slice(&(x.wrapping_mul(3).wrapping_add(1)).to_le_bytes())
}

/// Decodes the task index a result payload answers (inverts
/// [`process_payload`]).
fn decode_result(payload: &Bytes) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&payload[..8]);
    (u64::from_le_bytes(buf).wrapping_sub(1)) / 3
}

/// Wraps a source so every non-blocking ask reports "would block" while the
/// blocking pull still answers immediately: the deterministic stand-in for
/// an interactive input (a user typing lines). Drivers' fast-path asks fail
/// and the reactor's input pump must deliver — the exact path whose kick/ask
/// busy loop the `wasted_polls` counter guards
/// ([`FleetScript::interactive_input`]).
struct InteractiveSource<S> {
    inner: S,
}

impl<T, S: Source<T>> Source<T> for InteractiveSource<S> {
    fn pull(&mut self, request: Request) -> Answer<T> {
        self.inner.pull(request)
    }
    // No `try_pull` override: the trait default answers `None`, "would
    // block", which is the whole point of the wrapper.
}

/// Runs one deterministic fleet deployment: the real master — sharded
/// lender, inline reactor, wire protocol, heartbeat pacing, crash recovery —
/// over a virtual clock, single-stepped by one scheduler loop. See the
/// [module documentation](self) for the determinism contract.
///
/// # Panics
///
/// Panics if `params.volunteers` is zero, if the run deadlocks (no pending
/// work and no pending timers — a scheduler bug by construction), or if the
/// virtual horizon of ten simulated minutes is exceeded.
pub fn simulate_fleet(params: &FleetParams) -> FleetReport {
    assert!(params.volunteers > 0, "a fleet needs at least one volunteer");
    // `FleetParams` has public fields, so validate here too — a struct
    // literal bypasses the `with_flaps`/`with_script` builders. A flap (or
    // partition member) naming a volunteer outside the fleet would
    // otherwise be silently ignored or panic deep in the scheduler.
    for (v, _, _) in &params.flaps {
        assert!(*v < params.volunteers, "flap names volunteer {v} outside the fleet");
    }
    if let Some(script) = &params.script {
        assert_eq!(
            script.volunteers.len(),
            params.volunteers,
            "the script's fleet size must match params.volunteers"
        );
        for (members, _, _) in &script.partitions {
            for m in members {
                assert!(*m < params.volunteers, "partition names volunteer {m} outside the fleet");
            }
        }
    }
    let wall_start = Instant::now();
    let config = PandoConfig::deterministic(params.seed).with_bounded_wakes(params.bounded_wakes);
    let clock = config.run.clock.clone();
    let origin = clock.now();
    let pando = Pando::new(config);
    let mut trace: Vec<String> = Vec::new();
    let elapsed_us = |clock: &pando_netsim::sim::Clock| clock.elapsed().as_micros();

    // --- The fleet: seed-derived service times and fault schedule. -------
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let woken = Arc::new(Mutex::new(VecDeque::new()));
    let queued =
        Arc::new((0..params.volunteers).map(|_| AtomicBool::new(false)).collect::<Vec<_>>());
    let mut engine = Engine {
        queue: BinaryHeap::new(),
        next_seq: 0,
        woken: woken.clone(),
        queued: queued.clone(),
    };
    let mut volunteers: Vec<SimVolunteer> = Vec::with_capacity(params.volunteers);
    // One coalescing waker per volunteer, shared between up-front channels
    // and mid-run joins.
    let make_waker = {
        let woken = woken.clone();
        let queued = queued.clone();
        move |v: usize| -> pando_netsim::channel::Waker {
            let woken = woken.clone();
            let queued = queued.clone();
            Arc::new(move || {
                if !queued[v].swap(true, Ordering::SeqCst) {
                    woken.lock().push_back(v);
                }
            })
        }
    };
    let opt_us = |at: Option<Duration>| {
        at.map(|at| at.as_micros().to_string()).unwrap_or_else(|| "never".into())
    };
    if let Some(script) = &params.script {
        trace.push(format!(
            "scenario name={} interactive={}",
            script.name, script.interactive_input
        ));
        for (v, spec) in script.volunteers.iter().enumerate() {
            trace.push(format!(
                "setup v{v} group={} service_us={} latency_us={} jitter_us={} loss={} \
                 joins_at_us={} leaves_at_us={} crash_at_us={}",
                spec.group,
                spec.service.as_micros(),
                spec.channel.latency.as_micros(),
                spec.channel.jitter.as_micros(),
                spec.channel.loss,
                spec.joins_at.as_micros(),
                opt_us(spec.leaves_at),
                opt_us(spec.crash_at),
            ));
            let endpoint = if spec.joins_at.is_zero() {
                let endpoint = pando.open_volunteer_channel_with(spec.channel.clone());
                endpoint.set_waker(make_waker(v));
                Some(endpoint)
            } else {
                engine.schedule(origin + spec.joins_at, Ev::Join { v });
                None
            };
            if let Some(at) = spec.crash_at {
                engine.schedule(origin + at, Ev::Crash { v });
            }
            if let Some(at) = spec.leaves_at {
                engine.schedule(origin + at, Ev::Leave { v });
            }
            volunteers.push(SimVolunteer {
                endpoint,
                service: spec.service,
                busy_until: origin,
                repoll_at: None,
                pending_replies: 0,
                done: false,
                crashed: false,
                processed: 0,
            });
        }
        for (members, at, heal) in &script.partitions {
            engine.schedule(
                origin + *at,
                Ev::Partition { members: members.clone(), until: origin + *heal },
            );
        }
    } else {
        // Crash instants are drawn from a window scaled to the expected run
        // length (mean service 1.65 ms, `volunteers` devices in parallel),
        // so the fault schedule actually lands mid-run instead of after the
        // last result.
        let expected_run_us =
            (params.tasks.saturating_mul(1_650) / params.volunteers.max(1) as u64).max(5_000);
        for v in 0..params.volunteers {
            let endpoint = pando.open_volunteer_channel();
            endpoint.set_waker(make_waker(v));
            let service = Duration::from_micros(rng.gen_range(300..3_000));
            // Volunteer 0 is the survivor that guarantees completion.
            let crash_at_us = (v != 0 && rng.gen_bool(params.crash_fraction))
                .then(|| rng.gen_range(1_000u64..expected_run_us));
            if let Some(at_us) = crash_at_us {
                engine.schedule(origin + Duration::from_micros(at_us), Ev::Crash { v });
            }
            trace.push(format!(
                "setup v{v} service_us={} crash_at_us={}",
                service.as_micros(),
                crash_at_us.map(|us| us.to_string()).unwrap_or_else(|| "never".into())
            ));
            volunteers.push(SimVolunteer {
                endpoint: Some(endpoint),
                service,
                busy_until: origin,
                repoll_at: None,
                pending_replies: 0,
                done: false,
                crashed: false,
                processed: 0,
            });
        }
    }

    for (v, at_us, down_for_us) in &params.flaps {
        engine.schedule(
            origin + Duration::from_micros(*at_us),
            Ev::Flap { v: *v, down_for: Duration::from_micros(*down_for_us) },
        );
    }

    // --- The input stream: task index i as a little-endian u64 payload. --
    let inputs: Vec<Bytes> =
        (0..params.tasks).map(|i| Bytes::copy_from_slice(&i.to_le_bytes())).collect();
    let interactive = params.script.as_ref().map(|s| s.interactive_input).unwrap_or(false);
    let mut output = if interactive {
        pando.run(InteractiveSource { inner: from_iter(inputs) })
    } else {
        pando.run(from_iter(inputs))
    };
    let reactor =
        pando.reactor_handle().expect("the deterministic config always uses the reactor backend");

    // --- The scheduler loop. ---------------------------------------------
    let horizon = origin + Duration::from_secs(600);
    let mut output_order: Vec<u64> = Vec::with_capacity(params.tasks as usize);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    let mut finished = false;
    let mut crashed_fired = 0u64;
    loop {
        let mut progress = false;
        // 1. Drain the reactor's ready queue (fires due timers first).
        while reactor.step() {
            progress = true;
        }
        // 2. Pump starved shards synchronously; staged values re-queue
        //    drivers, so go around for more steps before anything else.
        if reactor.pump_starved() {
            continue;
        }
        // 3. Poll volunteers whose endpoints signalled readiness.
        while let Some(v) = engine.pop_woken() {
            poll_volunteer(v, &mut volunteers[v], &mut engine, &clock, &mut trace);
            progress = true;
        }
        // 4. Fire engine events due at the current virtual instant.
        while let Some(ev) = engine.pop_due(clock.now()) {
            progress = true;
            match ev {
                Ev::Crash { v } => {
                    let vol = &mut volunteers[v];
                    if vol.done {
                        continue;
                    }
                    let Some(endpoint) = vol.endpoint.as_ref() else {
                        // Crashing a volunteer that never joined is a no-op
                        // (scenario loading rejects such schedules).
                        continue;
                    };
                    endpoint.crash();
                    vol.crashed = true;
                    vol.done = true;
                    crashed_fired += 1;
                    trace.push(format!("[{}] v{v} crash", elapsed_us(&clock)));
                }
                Ev::Flap { v, down_for } => {
                    let vol = &mut volunteers[v];
                    if vol.done {
                        continue;
                    }
                    let Some(endpoint) = vol.endpoint.as_ref() else {
                        continue;
                    };
                    // Both directions go quiet until the device "rejoins":
                    // in-flight frames keep their delivery instants, later
                    // ones mature no earlier than the rejoin instant. The
                    // pause never trips the failure detector, mirroring a
                    // session resume inside the grace window.
                    endpoint.pause_link_until(clock.now() + down_for);
                    trace.push(format!(
                        "[{}] v{v} flap down_us={}",
                        elapsed_us(&clock),
                        down_for.as_micros()
                    ));
                }
                Ev::Reply { v, frames } => {
                    let vol = &mut volunteers[v];
                    vol.pending_replies = vol.pending_replies.saturating_sub(1);
                    if vol.done {
                        continue;
                    }
                    let Some(endpoint) = vol.endpoint.as_ref() else {
                        continue;
                    };
                    for frame in frames {
                        let size = frame.wire_size();
                        let count = frame.record_count();
                        if endpoint.send_records_with_size(frame, size, count).is_ok() {
                            trace.push(format!(
                                "[{}] v{v} reply records={count}",
                                elapsed_us(&clock)
                            ));
                        }
                    }
                }
                Ev::Join { v } => {
                    let spec = &params
                        .script
                        .as_ref()
                        .expect("join events only exist under a script")
                        .volunteers[v];
                    let vol = &mut volunteers[v];
                    if vol.done || vol.endpoint.is_some() {
                        continue;
                    }
                    // Registering with the master wires a driver at once:
                    // the lender starts dispatching to the newcomer on the
                    // next reactor step (the dynamic-join property).
                    let endpoint = pando.open_volunteer_channel_with(spec.channel.clone());
                    endpoint.set_waker(make_waker(v));
                    vol.endpoint = Some(endpoint);
                    trace.push(format!("[{}] v{v} join group={}", elapsed_us(&clock), spec.group));
                }
                Ev::Leave { v } => {
                    let vol = &mut volunteers[v];
                    if vol.done {
                        continue;
                    }
                    let Some(endpoint) = vol.endpoint.as_ref() else {
                        continue;
                    };
                    // A clean departure: goodbye then close. The master
                    // re-lends whatever the volunteer still held without
                    // waiting for a failure timeout, and `crash_relends`
                    // stays untouched. Tasks mid-compute are abandoned (the
                    // user shut the tab; the re-lend covers them).
                    let _ = endpoint.send(Message::Goodbye);
                    endpoint.close();
                    vol.done = true;
                    trace.push(format!("[{}] v{v} leave", elapsed_us(&clock)));
                }
                Ev::Partition { members, until } => {
                    let ids: Vec<String> = members.iter().map(usize::to_string).collect();
                    trace.push(format!(
                        "[{}] partition members={} heal_us={}",
                        elapsed_us(&clock),
                        ids.join(","),
                        until.saturating_duration_since(origin).as_micros()
                    ));
                    for v in members {
                        let vol = &volunteers[v];
                        if vol.done {
                            continue;
                        }
                        if let Some(endpoint) = vol.endpoint.as_ref() {
                            endpoint.pause_link_until(until);
                        }
                    }
                }
                Ev::Repoll { v } => {
                    volunteers[v].repoll_at = None;
                    poll_volunteer(v, &mut volunteers[v], &mut engine, &clock, &mut trace);
                }
            }
        }
        // 5. Drain the merged output without blocking.
        if !finished {
            while let Some(answer) = output.next_timeout(Duration::ZERO) {
                progress = true;
                match answer {
                    Answer::Value(payload) => {
                        for byte in payload.iter() {
                            digest = (digest ^ u64::from(*byte)).wrapping_mul(0x100_0000_01b3);
                        }
                        output_order.push(decode_result(&payload));
                    }
                    Answer::Done => {
                        trace.push(format!("[{}] output done", elapsed_us(&clock)));
                        finished = true;
                        break;
                    }
                    Answer::Err(err) => {
                        panic!("the merged output failed under the simulator: {err}");
                    }
                }
            }
        }
        if progress {
            continue;
        }
        if finished && reactor.stats().active == 0 {
            break;
        }
        // 6. Quiescent: advance virtual time to the earliest deadline.
        let next = match (reactor.next_timer_at(), engine.next_at()) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => panic!(
                "deterministic sim wedged: no pending work, no pending timers \
                 (finished={finished}, active={})",
                reactor.stats().active
            ),
        };
        assert!(next <= horizon, "deterministic sim exceeded the 600s virtual horizon");
        clock.advance_to(next);
    }

    // --- Canonical artefacts. --------------------------------------------
    assert_eq!(
        output_order.len() as u64,
        params.tasks,
        "every input value must produce exactly one output"
    );
    let reactor_stats = reactor.stats();
    pando.meter().observe_scheduler(crate::metrics::SchedulerCounters {
        polls: reactor_stats.polls,
        wasted_polls: reactor_stats.wasted_polls,
        kicks_sent: reactor_stats.kicks_sent,
        kicks_suppressed: reactor_stats.kicks_suppressed,
    });
    let report = pando.meter().report();
    let mut meter_rows: Vec<String> = report
        .rows
        .iter()
        .map(|row| {
            format!(
                "meter {} tasks={} wire_bytes={} wire_frames={} hb_sent={} hb_suppressed={}",
                row.device,
                row.tasks,
                row.wire_bytes,
                row.wire_frames,
                row.heartbeats_sent,
                row.heartbeats_suppressed
            )
        })
        .collect();
    if let Some(scheduler) = report.scheduler {
        meter_rows.push(format!(
            "meter scheduler polls={} wasted_polls={} kicks_sent={} kicks_suppressed={}",
            scheduler.polls,
            scheduler.wasted_polls,
            scheduler.kicks_sent,
            scheduler.kicks_suppressed
        ));
    }
    let shard_rows: Vec<String> = report
        .shards
        .iter()
        .map(|s| format!("shard {} borrows={} results={}", s.shard, s.borrows, s.results))
        .collect();
    let claim_log = pando.claim_log().unwrap_or_default();
    // Both sides of each pair share the counter, so the volunteer handle
    // sees master-side retransmissions too.
    let retransmits: u64 = volunteers
        .iter()
        .map(|vol| vol.endpoint.as_ref().map(Endpoint::link_retransmits).unwrap_or(0))
        .sum();
    pando.join_volunteers();
    FleetReport {
        params: params.clone(),
        trace,
        output_order,
        output_digest: digest,
        meter_rows,
        shard_rows,
        claim_log,
        reactor: reactor_stats,
        crashed: crashed_fired,
        retransmits,
        virtual_elapsed: clock.elapsed(),
        wall_elapsed: wall_start.elapsed(),
    }
}

/// Drains every deliverable frame of one simulated volunteer and reacts the
/// way a worker thread would: task frames are answered (after virtual
/// compute time), a clean close gets a goodbye, heartbeats are swallowed.
fn poll_volunteer(
    v: usize,
    vol: &mut SimVolunteer,
    engine: &mut Engine,
    clock: &pando_netsim::sim::Clock,
    trace: &mut Vec<String>,
) {
    if vol.done || vol.endpoint.is_none() {
        return;
    }
    loop {
        let endpoint = vol.endpoint.as_ref().expect("checked above; never cleared mid-run");
        let (records, batched) = match endpoint.try_recv() {
            Ok(Message::Task { seq, payload }) => (vec![Record::new(seq, payload)], false),
            Ok(Message::TaskBatch(records)) => (records, true),
            Ok(Message::Heartbeat) | Ok(Message::Ack { .. }) => continue,
            Ok(_) => {
                // Unexpected on the volunteer side; treat as end of stream.
                endpoint.close();
                vol.done = true;
                return;
            }
            Err(RecvError::Closed) => {
                if vol.pending_replies > 0 {
                    // Still computing: a worker thread would flush those
                    // replies before its next receive observed the close.
                    // Re-poll once the device goes idle (reply events at the
                    // same instant were scheduled earlier, so they fire
                    // first).
                    engine.schedule(vol.busy_until.max(clock.now()), Ev::Repoll { v });
                    return;
                }
                let _ = endpoint.send(Message::Goodbye);
                endpoint.close();
                vol.done = true;
                trace.push(format!("[{}] v{v} goodbye", clock.elapsed().as_micros()));
                return;
            }
            Err(RecvError::PeerFailed) => {
                vol.done = true;
                return;
            }
            Err(RecvError::Empty) | Err(RecvError::Timeout) => {
                // A frame may still be in virtual flight: re-poll when it
                // matures (de-duplicated against an earlier pending re-poll).
                if let Some(at) = endpoint.next_ready_at() {
                    if vol.repoll_at.map(|existing| at < existing).unwrap_or(true) {
                        vol.repoll_at = Some(at);
                        engine.schedule(at, Ev::Repoll { v });
                    }
                }
                return;
            }
        };
        let count = records.len();
        trace.push(format!(
            "[{}] v{v} recv records={count} batched={batched}",
            clock.elapsed().as_micros()
        ));
        vol.processed += count as u64;
        let results: Vec<Record> =
            records.iter().map(|r| Record::new(r.seq, process_payload(&r.payload))).collect();
        let reply = if batched {
            Message::ResultBatch(results)
        } else {
            let record = results.into_iter().next().expect("a task frame carries one record");
            Message::TaskResult { seq: record.seq, payload: record.payload }
        };
        // The device computes for `service × records` of virtual time,
        // serialised after whatever it was already chewing on.
        let now = clock.now();
        let start = vol.busy_until.max(now);
        let finish = start + vol.service * count as u32;
        vol.busy_until = finish;
        vol.pending_replies += 1;
        engine.schedule(finish, Ev::Reply { v, frames: vec![reply] });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_is_rejected() {
        let devices = [SimDevice::steady("a", ms(10))];
        simulate(&devices, &SimParams { batch_size: 0, latency: ms(1), duration: ms(100) });
    }

    #[test]
    fn single_device_throughput_matches_service_rate() {
        // 10 ms per task, negligible latency, batch 2: ~100 tasks/s.
        let devices = [SimDevice::steady("laptop", ms(10))];
        let params = SimParams { batch_size: 2, latency: ms(1), duration: Duration::from_secs(10) };
        let report = simulate(&devices, &params);
        let throughput = report.devices[0].throughput;
        assert!((throughput - 100.0).abs() < 2.0, "throughput {throughput} should be ~100/s");
        assert!(report.devices[0].utilization > 0.95);
    }

    #[test]
    fn batch_of_one_wastes_time_on_latency() {
        // With batch 1 every task pays a full round trip of idle time; with
        // batch 2 and 2*latency <= service the latency is fully hidden
        // (the §5.5 claim).
        let devices = [SimDevice::steady("phone", ms(10))];
        let slow = simulate(
            &devices,
            &SimParams { batch_size: 1, latency: ms(4), duration: Duration::from_secs(10) },
        );
        let fast = simulate(
            &devices,
            &SimParams { batch_size: 2, latency: ms(4), duration: Duration::from_secs(10) },
        );
        // Batch 1: cycle = service + 2*latency = 18 ms -> ~55/s.
        assert!((slow.devices[0].throughput - 55.5).abs() < 4.0);
        // Batch 2: the next task is always waiting -> ~100/s (latency hidden).
        assert!(fast.devices[0].throughput > 95.0);
        assert!(fast.total_throughput() > 1.6 * slow.total_throughput());
    }

    #[test]
    fn faster_devices_complete_more_tasks() {
        let devices = [SimDevice::steady("fast", ms(5)), SimDevice::steady("slow", ms(20))];
        let params = SimParams { batch_size: 2, latency: ms(2), duration: Duration::from_secs(5) };
        let report = simulate(&devices, &params);
        assert!(report.devices[0].completed > 3 * report.devices[1].completed);
        let share_fast = report.share(0);
        assert!(share_fast > 70.0 && share_fast < 90.0, "share {share_fast}");
    }

    #[test]
    fn late_join_contributes_less() {
        let mut late = SimDevice::steady("late", ms(10));
        late.joins_at = Duration::from_secs(5);
        let devices = [SimDevice::steady("early", ms(10)), late];
        let params = SimParams { batch_size: 2, latency: ms(1), duration: Duration::from_secs(10) };
        let report = simulate(&devices, &params);
        assert!(report.devices[0].completed > report.devices[1].completed);
        assert!(report.devices[1].completed > 0, "the late device still contributes");
    }

    #[test]
    fn crashed_device_stops_contributing() {
        let mut doomed = SimDevice::steady("doomed", ms(10));
        doomed.crashes_at = Some(Duration::from_secs(2));
        let devices = [SimDevice::steady("survivor", ms(10)), doomed];
        let params = SimParams { batch_size: 2, latency: ms(1), duration: Duration::from_secs(10) };
        let report = simulate(&devices, &params);
        let survivor = &report.devices[0];
        let crashed = &report.devices[1];
        assert!(crashed.completed < survivor.completed / 2);
        assert!(crashed.utilization < 0.3);
        assert!(survivor.utilization > 0.9);
    }

    #[test]
    fn report_totals_are_consistent() {
        let devices = [SimDevice::steady("a", ms(10)), SimDevice::steady("b", ms(10))];
        let params = SimParams { batch_size: 2, latency: ms(1), duration: Duration::from_secs(3) };
        let report = simulate(&devices, &params);
        let sum: u64 = report.devices.iter().map(|d| d.completed).sum();
        assert_eq!(sum, report.total_completed());
        assert!((report.share(0) + report.share(1) - 100.0).abs() < 1e-9);
        assert!(report.total_throughput() > 0.0);
        assert_eq!(report.duration, Duration::from_secs(3));
    }

    #[test]
    fn paper_window_is_five_minutes() {
        let params = SimParams::paper_window(2, ms(2));
        assert_eq!(params.duration, Duration::from_secs(300));
        assert_eq!(params.batch_size, 2);
    }

    #[test]
    fn fleet_sim_same_seed_is_byte_identical() {
        let params = FleetParams::new(1234, 6, 48);
        let a = simulate_fleet(&params);
        let b = simulate_fleet(&params);
        assert_eq!(a.canonical_trace(), b.canonical_trace());
        assert_eq!(a.output_digest, b.output_digest);
        assert_eq!(a.output_order, (0..48).collect::<Vec<u64>>());
        assert_eq!(a.claim_log, b.claim_log);
    }

    #[test]
    fn fleet_sim_different_seeds_diverge() {
        // Not a hard guarantee for every seed pair, but these two must not
        // collide — jitter, service times and the fault schedule all change.
        let a = simulate_fleet(&FleetParams::new(1, 6, 48));
        let b = simulate_fleet(&FleetParams::new(2, 6, 48));
        assert_ne!(a.canonical_trace(), b.canonical_trace());
        // Both still complete the stream in order.
        assert_eq!(a.output_order, b.output_order);
    }

    #[test]
    fn fleet_sim_recovers_from_crashes() {
        // Force a heavy fault schedule: half the fleet crashes, the stream
        // still completes in order because values are re-lent.
        let params = FleetParams::new(99, 8, 64).with_crash_fraction(0.9);
        let report = simulate_fleet(&params);
        assert!(report.crashed >= 1, "the schedule must actually crash volunteers");
        assert_eq!(report.output_order, (0..64).collect::<Vec<u64>>());
        assert!(
            report.trace.iter().any(|line| line.ends_with("crash")),
            "crash events appear in the trace"
        );
        // Crash recovery costs virtual time (the 500 ms failure timeout),
        // not wall time.
        assert!(report.virtual_elapsed >= Duration::from_millis(500));
    }

    #[test]
    fn fleet_sim_runs_entirely_on_virtual_time() {
        let report = simulate_fleet(&FleetParams::new(5, 4, 32));
        assert!(
            report.wall_elapsed < Duration::from_secs(30),
            "a 32-task fleet must not take wall-clock minutes ({:?})",
            report.wall_elapsed
        );
        assert!(report.virtual_elapsed > Duration::ZERO);
        let rows = report.meter_rows.join("\n");
        assert!(rows.contains("volunteer-0"), "meter rows carry per-device counters: {rows}");
    }

    #[test]
    #[should_panic(expected = "at least one volunteer")]
    fn fleet_sim_rejects_an_empty_fleet() {
        let _ = simulate_fleet(&FleetParams::new(0, 0, 1));
    }

    #[test]
    fn link_flaps_delay_but_never_crash_or_reorder() {
        // Same seed, no scripted crashes; one run flap-free, one with two
        // mid-run flaps. The flapped run must produce the same output order
        // and digest — a transient disconnect loses nothing — and must not
        // fire the crash re-lend path.
        let base = FleetParams::new(4242, 6, 60).with_crash_fraction(0.0);
        let calm = simulate_fleet(&base);
        let flapped =
            simulate_fleet(&base.clone().with_flaps(vec![(1, 2_000, 8_000), (3, 5_000, 20_000)]));
        assert_eq!(flapped.output_order, calm.output_order);
        assert_eq!(flapped.output_digest, calm.output_digest);
        assert_eq!(flapped.crashed, 0, "a flap is not a crash");
        assert_eq!(flapped.reactor.crash_relends, 0, "a flap must not fire the re-lend path");
        assert!(
            flapped.trace.iter().any(|line| line.contains("flap down_us=")),
            "flap events appear in the trace"
        );
        assert!(
            flapped.canonical_trace().contains("flaps v1@2000us+8000us,v3@5000us+20000us"),
            "a non-empty schedule is part of the canonical parameters"
        );
    }

    #[test]
    fn empty_flap_schedule_leaves_the_trace_unchanged() {
        // `with_flaps(vec![])` must be a byte-level no-op: fault-absent runs
        // keep their pre-flap canonical traces.
        let params = FleetParams::new(7, 4, 24);
        let plain = simulate_fleet(&params);
        let explicit = simulate_fleet(&params.clone().with_flaps(Vec::new()));
        assert_eq!(plain.canonical_trace(), explicit.canonical_trace());
        assert!(!plain.canonical_trace().contains("flaps "));
    }

    #[test]
    #[should_panic(expected = "outside the fleet")]
    fn flap_on_an_unknown_volunteer_is_rejected() {
        let _ = FleetParams::new(1, 2, 8).with_flaps(vec![(2, 100, 100)]);
    }

    #[test]
    #[should_panic(expected = "outside the fleet")]
    fn struct_literal_flap_outside_the_fleet_is_rejected_at_run_time() {
        // The builders validate, but `FleetParams` has public fields: a
        // struct literal used to smuggle an out-of-range flap past the
        // check, where it was silently ignored.
        let params = FleetParams {
            seed: 1,
            volunteers: 2,
            tasks: 8,
            crash_fraction: 0.0,
            bounded_wakes: true,
            flaps: vec![(2, 100, 100)],
            script: None,
        };
        let _ = simulate_fleet(&params);
    }

    fn spec(group: &str, service_us: u64, seed: u64) -> VolunteerSpec {
        VolunteerSpec {
            group: group.into(),
            service: Duration::from_micros(service_us),
            channel: ChannelConfig::lan().with_seed(seed),
            joins_at: Duration::ZERO,
            leaves_at: None,
            crash_at: None,
        }
    }

    #[test]
    fn scripted_fleet_is_deterministic_across_churn_loss_and_partitions() {
        // A hand-built script exercising every scripted event kind at once:
        // a lossy WAN phone, a mid-run join, a clean leave, a crash and a
        // partition that heals. The stream still completes exactly once per
        // task, and two runs are byte-identical.
        let mut phone = spec("wan", 2_500, 11);
        phone.channel = ChannelConfig::wan().with_seed(11).with_loss(0.2);
        let mut latecomer = spec("lan", 900, 12);
        latecomer.joins_at = Duration::from_millis(8);
        let mut quitter = spec("lan", 1_100, 13);
        quitter.leaves_at = Some(Duration::from_millis(20));
        let mut doomed = spec("lan", 700, 14);
        doomed.crash_at = Some(Duration::from_millis(15));
        let script = FleetScript {
            name: "unit_mixed".into(),
            volunteers: vec![spec("lan", 800, 10), phone, latecomer, quitter, doomed],
            partitions: vec![(vec![0, 1], Duration::from_millis(10), Duration::from_millis(14))],
            interactive_input: false,
        };
        let params = FleetParams::new(77, 1, 96).with_script(script);
        assert_eq!(params.volunteers, 5, "with_script adopts the script's fleet size");
        let a = simulate_fleet(&params);
        let b = simulate_fleet(&params);
        assert_eq!(a.canonical_trace(), b.canonical_trace());
        assert_eq!(a.output_order, (0..96).collect::<Vec<u64>>(), "exactly-once output");
        assert_eq!(a.crashed, 1);
        assert!(a.retransmits > 0, "a 20% lossy link must retransmit");
        assert!(a.canonical_trace().contains("scenario name=unit_mixed"));
        assert!(a.trace.iter().any(|l| l.contains("join group=lan")));
        assert!(a.trace.iter().any(|l| l.contains("leave")));
        assert!(a.trace.iter().any(|l| l.contains("partition members=0,1")));
        assert!(a.canonical_trace().contains(&format!("loss retransmits={}", a.retransmits)));
    }

    #[test]
    fn interactive_input_completes_with_a_bounded_wasted_poll_budget() {
        // The PR 7 regression shape: a source whose non-blocking asks always
        // would-block forces every task through the input pump. The run must
        // finish (no wedge) without the kick/ask busy loop inflating
        // wasted_polls.
        let script = FleetScript {
            name: "unit_interactive".into(),
            volunteers: vec![spec("lan", 800, 20), spec("lan", 1_200, 21)],
            partitions: Vec::new(),
            interactive_input: true,
        };
        let params = FleetParams::new(5, 1, 48).with_script(script);
        let report = simulate_fleet(&params);
        assert_eq!(report.output_order, (0..48).collect::<Vec<u64>>());
        assert!(
            report.reactor.wasted_polls <= 10 * 48,
            "wasted polls must stay bounded, got {}",
            report.reactor.wasted_polls
        );
    }

    #[test]
    #[should_panic(expected = "fleet size must match")]
    fn script_fleet_size_mismatch_is_rejected() {
        let script = FleetScript {
            name: "unit_bad".into(),
            volunteers: vec![spec("lan", 800, 1)],
            partitions: Vec::new(),
            interactive_input: false,
        };
        let mut params = FleetParams::new(1, 1, 8).with_script(script);
        params.volunteers = 3; // struct-literal-style tampering
        let _ = simulate_fleet(&params);
    }
}
