//! Raw-syscall shim for the Linux readiness facilities the TCP poller
//! needs: `epoll` and the TCP keepalive socket options.
//!
//! The build environment has no registry access, so — same pattern as the
//! `vendor/` stand-ins from PR 1 — this declares the handful of C symbols
//! directly instead of pulling in `libc`/`mio`. Everything here is a thin
//! `io::Result` wrapper over one syscall; all policy (interest tracking,
//! fairness, teardown) lives in [`super::tcp::poller`].
//!
//! Only compiled on Linux; on other targets `transport::tcp` falls back to
//! the legacy two-threads-per-connection pump backend.
#![cfg(target_os = "linux")]
#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readiness flags (kernel `EPOLL*` bit values).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the write half (half-close); lets the poller observe EOF
/// without waiting for a zero-byte read.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const SOL_SOCKET: i32 = 1;
const SO_KEEPALIVE: i32 = 9;
const IPPROTO_TCP: i32 = 6;
const TCP_KEEPIDLE: i32 = 4;
const TCP_KEEPINTVL: i32 = 5;
const TCP_KEEPCNT: i32 = 6;

/// Mirror of the kernel's `struct epoll_event`. The kernel declares it
/// packed on x86-64 (and only there) so the 64-bit `data` field sits at
/// offset 4.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token, returned verbatim with each event.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, name: i32, value: *const std::ffi::c_void, len: u32) -> i32;
    fn getsockopt(
        fd: i32,
        level: i32,
        name: i32,
        value: *mut std::ffi::c_void,
        len: *mut u32,
    ) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance. Closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a new close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Register `fd` with the given interest set and token.
    ///
    /// Registration is effective immediately, even against a concurrent
    /// [`Epoll::wait`] on another thread — the poller relies on this to
    /// avoid a wakeup pipe.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Replace the interest set for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Remove `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until readiness events arrive or `timeout` elapses; returns
    /// how many entries of `events` were filled. `None` blocks forever.
    /// `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            // Round up so a positive timeout never busy-spins as 0ms.
            Some(d) => i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX),
        };
        loop {
            let n = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

fn set_opt_i32(fd: RawFd, level: i32, name: i32, value: i32) -> io::Result<()> {
    let len = std::mem::size_of::<i32>() as u32;
    cvt(unsafe { setsockopt(fd, level, name, (&value as *const i32).cast(), len) }).map(|_| ())
}

/// Enable TCP keepalive on `fd`, with the probe cadence derived from the
/// application heartbeat interval (kernel granularity is whole seconds, so
/// sub-second heartbeats round up to 1s probes).
pub fn set_keepalive(fd: RawFd, interval: Duration) -> io::Result<()> {
    let secs = i32::try_from(interval.as_secs().max(1)).unwrap_or(i32::MAX);
    set_opt_i32(fd, SOL_SOCKET, SO_KEEPALIVE, 1)?;
    set_opt_i32(fd, IPPROTO_TCP, TCP_KEEPIDLE, secs)?;
    set_opt_i32(fd, IPPROTO_TCP, TCP_KEEPINTVL, secs)?;
    set_opt_i32(fd, IPPROTO_TCP, TCP_KEEPCNT, 3)
}

/// Read back whether `SO_KEEPALIVE` is enabled on `fd` (used by tests).
pub fn keepalive_enabled(fd: RawFd) -> io::Result<bool> {
    let mut value: i32 = 0;
    let mut len = std::mem::size_of::<i32>() as u32;
    cvt(unsafe {
        getsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, (&mut value as *mut i32).cast(), &mut len)
    })?;
    Ok(value != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_readable_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), EPOLLIN, 7).unwrap();

        // Nothing to read yet: a short wait times out empty.
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let n = epoll.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);

        use std::io::Write;
        (&client).write_all(b"ping").unwrap();
        let n = epoll.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        epoll.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn keepalive_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        assert!(!keepalive_enabled(client.as_raw_fd()).unwrap());
        set_keepalive(client.as_raw_fd(), Duration::from_millis(200)).unwrap();
        assert!(keepalive_enabled(client.as_raw_fd()).unwrap());
    }
}
