//! Length-prefixed [`Message`] frames over real TCP sockets.
//!
//! This is the first transport that takes the fleet out of the process: a
//! master in one OS process drives volunteer workers in other processes over
//! localhost (or LAN) TCP, through exactly the same reactor, lender and
//! failure-detection machinery the deterministic simulator exercises.
//!
//! The wire format reuses the existing fallible codec verbatim — every frame
//! is what [`Message::encode`] produces (`tag: u8`, `len: u32` big-endian,
//! payload), with tag `0` reserved as a transport-level close marker so a
//! clean [`close`](Transport::close) is distinguishable from a crash.
//! A connection starts with a tiny hello:
//!
//! ```text
//! volunteer -> master:  b"PNDO"  version:u8  name_len:u16be  name bytes
//! master    -> volunteer: b"PNDO"  version:u8
//! ```
//!
//! Crash detection maps onto the same [`FailureDetector`] path as the
//! simulated channels: every arriving frame refreshes `last_heard`, and once
//! `failure_timeout` passes without traffic the peer is reported as
//! [`RecvError::PeerFailed`] — so crash re-lend and shard hopping work
//! unchanged over sockets. Abrupt socket death (reset, EOF without a close
//! marker) short-circuits the timeout.

use super::{Transport, TransportError, TransportErrorKind};
use crate::master::Pando;
use crate::protocol::Message;
use bytes::BytesMut;
use pando_netsim::channel::{RecvError, SendError, Waker};
use pando_netsim::codec::{encode_frame, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use pando_netsim::heartbeat::FailureDetector;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Magic bytes opening both handshake directions.
const MAGIC: [u8; 4] = *b"PNDO";
/// Version byte of the TCP wire protocol; bumped on incompatible change.
pub const TCP_PROTOCOL_VERSION: u8 = 1;
/// Frame tag reserved for the transport-level close marker (the protocol's
/// message tags start at 1).
const TAG_CLOSE: u8 = 0;
/// Longest volunteer name accepted in the hello.
const MAX_NAME_LEN: usize = 256;
/// Read/write deadline applied only during the handshake so a stalled or
/// hostile client cannot wedge the accept loop.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Knobs of a TCP link. Liveness settings mirror
/// [`ChannelConfig`](pando_netsim::channel::ChannelConfig): heartbeats are
/// expected every `heartbeat_interval` and the peer is declared crashed
/// after `failure_timeout` of silence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// Interval between keep-alive heartbeats while a link is idle.
    pub heartbeat_interval: Duration,
    /// Silence after which the peer is suspected crashed; must exceed
    /// `heartbeat_interval`.
    pub failure_timeout: Duration,
    /// Disable Nagle's algorithm (`TCP_NODELAY`); latency beats batching for
    /// the small control frames of this protocol.
    pub nodelay: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_secs(2),
            failure_timeout: Duration::from_secs(10),
            nodelay: true,
        }
    }
}

impl TcpConfig {
    /// Tightened liveness windows for tests and localhost demos, where a
    /// crash should be detected in well under a second.
    pub fn local_test() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(50),
            failure_timeout: Duration::from_millis(400),
            nodelay: true,
        }
    }
}

/// Everything both pump threads and the public API share about one link.
struct LinkState {
    /// Decoded messages not yet handed to the consumer, FIFO.
    inbox: VecDeque<Message>,
    /// Peer sent the close marker: drain the inbox, then report `Closed`.
    peer_closed: bool,
    /// The link died without a close marker (I/O error, EOF, bad frame,
    /// heartbeat timeout): report `PeerFailed` after draining.
    failed: Option<TransportError>,
    /// We closed our sending direction.
    locally_closed: bool,
    /// We abandoned the connection abruptly.
    crashed: bool,
    /// Last instant any frame arrived from the peer; feeds the detector.
    last_heard: Instant,
    /// Readiness callback, one slot.
    waker: Option<Waker>,
}

/// Outbound queue drained by the writer thread.
enum WriteItem {
    Frame(bytes::Bytes),
    /// Flush, send the close marker, shut the write half down, exit.
    Close,
}

struct WriteState {
    queue: VecDeque<WriteItem>,
    /// Writer thread exits once it has drained up to this.
    done: bool,
}

struct Shared {
    state: Mutex<LinkState>,
    /// Signalled on every inbox/terminal-state change; backs blocking recv.
    recv_cv: Condvar,
    write: Mutex<WriteState>,
    write_cv: Condvar,
    detector: FailureDetector,
    config: TcpConfig,
}

impl Shared {
    /// Wakes blocking receivers and the registered reactor waker. Must be
    /// called after every state change that could make the link pollable.
    fn notify(&self, state: &LinkState) {
        self.recv_cv.notify_all();
        if let Some(waker) = &state.waker {
            waker();
        }
    }

    fn fail(&self, error: TransportError) {
        let mut state = self.state.lock();
        if state.failed.is_none() && !state.peer_closed {
            state.failed = Some(error);
        }
        self.notify(&state);
    }
}

/// One live TCP connection speaking the Pando frame protocol.
///
/// Created by [`TcpTransport::connect`] on the volunteer side or handed out
/// by a [`TcpAcceptor`] on the master side. Dropping the transport closes it
/// cleanly unless [`crash`](Transport::crash) was called first.
pub struct TcpTransport {
    shared: Arc<Shared>,
    stream: TcpStream,
    /// Peer name from the handshake (volunteer side: our own name).
    peer: String,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.peer)
            .field("local", &self.stream.local_addr().ok())
            .finish()
    }
}

impl TcpTransport {
    /// Connects to a master at `addr`, introduces this volunteer as `name`
    /// and returns the live transport.
    ///
    /// # Errors
    ///
    /// [`TransportErrorKind::Io`] if the connection cannot be established,
    /// [`TransportErrorKind::Protocol`] if the master answers with the wrong
    /// magic or an incompatible version.
    pub fn connect(
        addr: impl ToSocketAddrs,
        name: &str,
        config: TcpConfig,
    ) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(config.nodelay)?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT))?;

        let name_bytes = name.as_bytes();
        if name_bytes.is_empty() || name_bytes.len() > MAX_NAME_LEN {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!("volunteer name must be 1..={MAX_NAME_LEN} bytes"),
            ));
        }
        let mut hello = Vec::with_capacity(MAGIC.len() + 3 + name_bytes.len());
        hello.extend_from_slice(&MAGIC);
        hello.push(TCP_PROTOCOL_VERSION);
        hello.extend_from_slice(&(name_bytes.len() as u16).to_be_bytes());
        hello.extend_from_slice(name_bytes);
        let mut stream_ref = &stream;
        stream_ref.write_all(&hello)?;

        let mut ack = [0u8; 5];
        stream_ref.read_exact(&mut ack)?;
        if ack[..4] != MAGIC {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                "master answered with wrong magic (not a pando master?)",
            ));
        }
        if ack[4] != TCP_PROTOCOL_VERSION {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!(
                    "protocol version mismatch: master speaks v{}, this build speaks v{}",
                    ack[4], TCP_PROTOCOL_VERSION
                ),
            ));
        }

        stream.set_read_timeout(None)?;
        stream.set_write_timeout(None)?;
        Ok(Self::spawn_pumps(stream, name.to_string(), config))
    }

    /// Performs the master side of the handshake on an accepted socket and
    /// returns the volunteer's self-declared name with the live transport.
    fn accept_handshake(
        stream: TcpStream,
        config: TcpConfig,
    ) -> Result<(String, Self), TransportError> {
        stream.set_nodelay(config.nodelay)?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT))?;

        let mut stream_ref = &stream;
        let mut head = [0u8; 7];
        stream_ref.read_exact(&mut head)?;
        if head[..4] != MAGIC {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                "client sent wrong magic",
            ));
        }
        if head[4] != TCP_PROTOCOL_VERSION {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!(
                    "protocol version mismatch: client speaks v{}, this build speaks v{}",
                    head[4], TCP_PROTOCOL_VERSION
                ),
            ));
        }
        let name_len = u16::from_be_bytes([head[5], head[6]]) as usize;
        if name_len == 0 || name_len > MAX_NAME_LEN {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!("volunteer name length {name_len} outside 1..={MAX_NAME_LEN}"),
            ));
        }
        let mut name = vec![0u8; name_len];
        stream_ref.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| {
            TransportError::new(TransportErrorKind::Protocol, "volunteer name is not UTF-8")
        })?;

        let mut ack = [0u8; 5];
        ack[..4].copy_from_slice(&MAGIC);
        ack[4] = TCP_PROTOCOL_VERSION;
        stream_ref.write_all(&ack)?;

        stream.set_read_timeout(None)?;
        stream.set_write_timeout(None)?;
        let transport = Self::spawn_pumps(stream, name.clone(), config);
        Ok((name, transport))
    }

    /// Wires the shared state and starts the reader/writer pump threads.
    fn spawn_pumps(stream: TcpStream, peer: String, config: TcpConfig) -> Self {
        let detector = FailureDetector::new(config.heartbeat_interval, config.failure_timeout);
        let shared = Arc::new(Shared {
            state: Mutex::new(LinkState {
                inbox: VecDeque::new(),
                peer_closed: false,
                failed: None,
                locally_closed: false,
                crashed: false,
                last_heard: Instant::now(),
                waker: None,
            }),
            recv_cv: Condvar::new(),
            write: Mutex::new(WriteState { queue: VecDeque::new(), done: false }),
            write_cv: Condvar::new(),
            detector,
            config,
        });

        let reader_shared = shared.clone();
        let reader_stream = stream.try_clone().expect("clone TCP stream for reader");
        thread::Builder::new()
            .name(format!("tcp-read-{peer}"))
            .spawn(move || run_reader(reader_stream, reader_shared))
            .expect("spawn tcp reader thread");

        let writer_shared = shared.clone();
        let writer_stream = stream.try_clone().expect("clone TCP stream for writer");
        thread::Builder::new()
            .name(format!("tcp-write-{peer}"))
            .spawn(move || run_writer(writer_stream, writer_shared))
            .expect("spawn tcp writer thread");

        Self { shared, stream, peer }
    }

    /// The peer's handshake name (on the master side) or this volunteer's
    /// own name (on the connecting side).
    pub fn peer_name(&self) -> &str {
        &self.peer
    }

    /// The socket address of the remote end.
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.stream.peer_addr().ok()
    }

    /// Core non-blocking poll shared by `try_recv`/`recv_timeout`.
    fn poll_inbox(&self, state: &mut LinkState) -> Result<Message, RecvError> {
        if let Some(message) = state.inbox.pop_front() {
            return Ok(message);
        }
        if state.peer_closed {
            return Err(RecvError::Closed);
        }
        if state.crashed {
            return Err(RecvError::Closed);
        }
        if state.failed.is_some() {
            return Err(RecvError::PeerFailed);
        }
        if self.shared.detector.suspects_at(state.last_heard, Instant::now()) {
            state.failed = Some(TransportError::new(
                TransportErrorKind::PeerFailed,
                "peer silent past the failure timeout",
            ));
            return Err(RecvError::PeerFailed);
        }
        Err(RecvError::Empty)
    }

    fn enqueue(&self, item: WriteItem) -> Result<(), SendError> {
        let mut write = self.shared.write.lock();
        if write.done {
            return Err(SendError::Closed);
        }
        if matches!(item, WriteItem::Close) {
            write.done = true;
        }
        write.queue.push_back(item);
        self.shared.write_cv.notify_one();
        Ok(())
    }

    fn send_frame(&self, message: &Message) -> Result<(), SendError> {
        {
            let state = self.shared.state.lock();
            if state.locally_closed || state.crashed {
                return Err(SendError::Closed);
            }
            if state.failed.is_some() {
                return Err(SendError::PeerFailed);
            }
            if state.peer_closed {
                return Err(SendError::Closed);
            }
        }
        let frame = match message.encode() {
            Ok(frame) => frame,
            Err(err) => {
                // An unencodable (oversized) frame poisons the link: the
                // peer could never receive it, so pretending it was sent
                // would silently drop records.
                self.shared.fail(TransportError::new(TransportErrorKind::Protocol, err.message()));
                return Err(SendError::PeerFailed);
            }
        };
        self.enqueue(WriteItem::Frame(frame))
    }
}

impl Transport for TcpTransport {
    fn try_recv(&self) -> Result<Message, RecvError> {
        let mut state = self.shared.state.lock();
        self.poll_inbox(&mut state)
    }

    fn recv(&self) -> Result<Message, RecvError> {
        loop {
            match self.recv_timeout(self.shared.config.failure_timeout) {
                Err(RecvError::Timeout) => continue,
                other => return other,
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            match self.poll_inbox(&mut state) {
                Err(RecvError::Empty) => {}
                other => return other,
            }
            // Wake early enough to notice a heartbeat timeout even if the
            // caller asked for a longer wait.
            let suspect_at = state.last_heard + self.shared.config.failure_timeout;
            let wait_until = deadline.min(suspect_at);
            if Instant::now() >= wait_until {
                if Instant::now() >= deadline {
                    return Err(RecvError::Timeout);
                }
                continue; // suspicion matured; re-poll classifies it
            }
            self.shared.recv_cv.wait_until(&mut state, wait_until);
        }
    }

    fn send(&self, message: Message) -> Result<(), SendError> {
        self.send_frame(&message)
    }

    fn send_records_with_size(
        &self,
        message: Message,
        _size: usize,
        _records: u64,
    ) -> Result<(), SendError> {
        // Real sockets carry the actual bytes; the simulated bandwidth
        // accounting parameters are meaningless here.
        self.send_frame(&message)
    }

    fn set_waker(&self, waker: Waker) {
        let mut state = self.shared.state.lock();
        state.waker = Some(waker);
    }

    fn clear_waker(&self) {
        let mut state = self.shared.state.lock();
        state.waker = None;
    }

    fn next_ready_at(&self) -> Option<Instant> {
        let state = self.shared.state.lock();
        if state.peer_closed || state.crashed || state.failed.is_some() {
            return None;
        }
        if !state.inbox.is_empty() {
            return Some(Instant::now());
        }
        // The only future event a quiet socket schedules is crash suspicion
        // maturing; the reactor arms a timer for it so heartbeat-timeout
        // detection works without a dedicated thread.
        Some(state.last_heard + self.shared.config.failure_timeout)
    }

    fn close(&self) {
        {
            let mut state = self.shared.state.lock();
            if state.locally_closed || state.crashed {
                return;
            }
            state.locally_closed = true;
        }
        let _ = self.enqueue(WriteItem::Close);
    }

    fn crash(&self) {
        {
            let mut state = self.shared.state.lock();
            if state.crashed {
                return;
            }
            state.crashed = true;
            self.shared.notify(&state);
        }
        {
            let mut write = self.shared.write.lock();
            write.done = true;
            write.queue.clear();
            self.shared.write_cv.notify_one();
        }
        // Abrupt: no close marker, both directions torn down. The peer sees
        // EOF (or a reset) without the marker and classifies it as a crash.
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn is_peer_alive(&self) -> bool {
        let state = self.shared.state.lock();
        state.failed.is_none()
            && !state.peer_closed
            && !self.shared.detector.suspects_at(state.last_heard, Instant::now())
    }

    fn heartbeat_interval(&self) -> Duration {
        self.shared.config.heartbeat_interval
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.close();
    }
}

/// Reader pump: socket bytes → frames → decoded messages → inbox + waker.
fn run_reader(mut stream: TcpStream, shared: Arc<Shared>) {
    let mut buf = BytesMut::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete frame currently buffered.
        loop {
            if buf.len() < FRAME_HEADER_LEN {
                break;
            }
            let tag = buf[0];
            let len = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
            if len > MAX_FRAME_LEN {
                shared.fail(TransportError::new(
                    TransportErrorKind::Protocol,
                    format!("incoming frame of {len} bytes exceeds the {MAX_FRAME_LEN} limit"),
                ));
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            if buf.len() < FRAME_HEADER_LEN + len {
                break;
            }
            let frame = buf.split_to(FRAME_HEADER_LEN + len);
            let mut state = shared.state.lock();
            state.last_heard = Instant::now();
            if tag == TAG_CLOSE {
                state.peer_closed = true;
                shared.notify(&state);
                // The peer will not send again; wait for EOF below so the
                // socket drains before the thread exits.
                continue;
            }
            match Message::decode(&frame) {
                Ok(message) => {
                    state.inbox.push_back(message);
                    shared.notify(&state);
                }
                Err(err) => {
                    drop(state);
                    shared.fail(TransportError::new(
                        TransportErrorKind::Protocol,
                        format!("undecodable frame: {err}"),
                    ));
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }

        match stream.read(&mut chunk) {
            Ok(0) => {
                let mut state = shared.state.lock();
                let mid_frame = !buf.is_empty();
                if !state.peer_closed && state.failed.is_none() {
                    // EOF without the close marker — or worse, mid-frame —
                    // is a crash, not a clean shutdown.
                    state.failed = Some(TransportError::new(
                        TransportErrorKind::PeerFailed,
                        if mid_frame {
                            "connection dropped mid-frame"
                        } else {
                            "connection dropped without close marker"
                        },
                    ));
                }
                shared.notify(&state);
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(err) => {
                shared.fail(err.into());
                return;
            }
        }
    }
}

/// Writer pump: outbound queue → socket. Exits after the close marker or on
/// the first I/O error (which is reported as a link failure).
fn run_writer(mut stream: TcpStream, shared: Arc<Shared>) {
    loop {
        let item = {
            let mut write = shared.write.lock();
            loop {
                if let Some(item) = write.queue.pop_front() {
                    break item;
                }
                if write.done {
                    return; // crash() cleared the queue
                }
                shared.write_cv.wait(&mut write);
            }
        };
        match item {
            WriteItem::Frame(frame) => {
                if let Err(err) = stream.write_all(&frame) {
                    shared.fail(err.into());
                    return;
                }
            }
            WriteItem::Close => {
                let marker = encode_frame(TAG_CLOSE, b"").expect("empty close frame encodes");
                if stream.write_all(&marker).and_then(|_| stream.flush()).is_ok() {
                    let _ = stream.shutdown(Shutdown::Write);
                }
                return;
            }
        }
    }
}

/// Listening socket that accepts volunteer connections and performs the
/// handshake.
pub struct TcpAcceptor {
    listener: TcpListener,
    config: TcpConfig,
}

impl TcpAcceptor {
    /// Binds a listener on `addr` (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// [`TransportErrorKind::Io`] if the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs, config: TcpConfig) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self { listener, config })
    }

    /// The bound address, including the resolved port.
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (never on a bound socket).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has a local address")
    }

    /// Accepts one pending connection, if any, and runs the handshake.
    /// Returns `Ok(None)` when no connection is waiting.
    ///
    /// # Errors
    ///
    /// Handshake failures ([`TransportErrorKind::Protocol`]) and accept
    /// errors ([`TransportErrorKind::Io`]); both leave the acceptor usable.
    pub fn accept(&self) -> Result<Option<(String, TcpTransport)>, TransportError> {
        match self.listener.accept() {
            Ok((stream, _addr)) => {
                let (name, transport) =
                    TcpTransport::accept_handshake(stream, self.config.clone())?;
                Ok(Some((name, transport)))
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(err) => Err(err.into()),
        }
    }

    /// Spawns an accept loop that registers every handshaken volunteer with
    /// `pando` under its self-declared name. Handshake failures are counted
    /// and skipped — one bad client must not take the fleet down.
    pub fn serve(self, pando: &Pando) -> TcpServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let stop_flag = stop.clone();
        let accepted_counter = accepted.clone();
        let pando = pando.clone();
        let handle = thread::Builder::new()
            .name("tcp-accept".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::SeqCst) {
                    match self.accept() {
                        Ok(Some((name, transport))) => {
                            pando.add_volunteer_transport(name, Arc::new(transport));
                            accepted_counter.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(None) => thread::sleep(Duration::from_millis(5)),
                        Err(_) => {
                            // Rejected handshake or transient accept error;
                            // keep listening.
                            thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
            })
            .expect("spawn tcp accept thread");
        TcpServerHandle { stop, accepted, handle }
    }
}

/// Handle to a running [`TcpAcceptor::serve`] loop.
pub struct TcpServerHandle {
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    handle: thread::JoinHandle<()>,
}

impl TcpServerHandle {
    /// Asks the accept loop to stop after its current iteration.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// How many volunteers have handshaken so far. Live — callers can gate
    /// the start of a run on a minimum fleet size.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Blocks until at least `count` volunteers have handshaken or `timeout`
    /// elapses; returns whether the quorum was reached.
    pub fn wait_for_volunteers(&self, count: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.accepted() < count {
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Stops the loop and returns how many volunteers were accepted.
    pub fn join(self) -> usize {
        self.stop();
        let _ = self.handle.join();
        self.accepted.load(Ordering::SeqCst)
    }
}
