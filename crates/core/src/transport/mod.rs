//! The transport seam between the coordination layer and the wire.
//!
//! The reactor, the master's dispatch/receive pumps and the worker loops
//! never cared that messages travelled over in-process [`netsim`] channels —
//! they consume a narrow, readiness-shaped surface: non-blocking
//! [`try_recv`](Transport::try_recv), fallible frame
//! [`send`](Transport::send), waker registration, a
//! [`next_ready_at`](Transport::next_ready_at) deadline hint and
//! peer-liveness/close semantics. [`Transport`] formalizes that seam as an
//! object-safe trait so the same state machines drive
//!
//! * [`netsim::Endpoint<Message>`](pando_netsim::channel::Endpoint) — the
//!   deterministic in-process twin used by the virtual-clock fleet simulator
//!   and every test, and
//! * [`TcpTransport`](tcp::TcpTransport) — length-prefixed frames over a real
//!   socket, taking the fleet across OS processes.
//!
//! # Trait contract
//!
//! | Aspect | Guarantee |
//! |---|---|
//! | Blocking discipline | [`try_recv`](Transport::try_recv) never blocks; [`recv`](Transport::recv)/[`recv_timeout`](Transport::recv_timeout) may block and MUST NOT be called from reactor pool threads. Virtual-clock transports panic on `recv`. |
//! | Ordering | Frames are delivered reliably and in FIFO order per connection. |
//! | Waker | The registered waker fires whenever the transport *may* have become pollable: frame arrival, clean close, crash detection, peer drop. One slot: `set_waker` replaces any previous waker. Spurious wakes are allowed; lost wakes are not. |
//! | Deadline hint | [`next_ready_at`](Transport::next_ready_at) returns the earliest instant at which a currently-known future event matures (a buffered frame's delivery time, a pending crash suspicion). `None` means "nothing scheduled"; the reactor then relies solely on the waker. |
//! | Bounded send | Outbound buffering is byte-bounded. A data send that would overflow the bound fails with [`SendError::WouldBlock`]: nothing is sent, the link stays healthy, and the waker fires once the buffer drains below the bound so the caller parks instead of spinning or buffering unboundedly. Zero-size control sends are always admitted on simulated channels; over TCP a tiny heartbeat frame may still be rejected at the bound and is safe to drop (data traffic proves liveness). A frame larger than the whole bound is admitted alone. |
//! | Close | [`close`](Transport::close) closes the *send* direction; the peer drains in-flight frames then observes [`RecvError::Closed`]. |
//! | Crash | [`crash`](Transport::crash) abandons the connection without notice; the peer observes [`RecvError::PeerFailed`] once the failure detector's timeout elapses. |
//!
//! [`netsim`]: pando_netsim

pub(crate) mod sys;
pub mod tcp;

use crate::protocol::Message;
use pando_netsim::channel::{Endpoint, RecvError, SendError, Waker};
use pando_pull_stream::StreamError;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A reliable, ordered, crash-prone message channel to one peer.
///
/// Implementations connect the master to exactly one volunteer (or vice
/// versa). The trait is object-safe: the reactor holds volunteers as
/// `Arc<dyn Transport>` so deterministic simulation endpoints and real TCP
/// connections can share one fleet.
///
/// See the [module docs](self) for the full contract table.
pub trait Transport: Send + Sync {
    /// Returns the next message if one is already available, without
    /// blocking.
    ///
    /// # Errors
    ///
    /// [`RecvError::Empty`] when nothing is ready yet, [`RecvError::Closed`]
    /// after a clean close, [`RecvError::PeerFailed`] once the peer is
    /// suspected crashed.
    fn try_recv(&self) -> Result<Message, RecvError>;

    /// Receives the next message, blocking until one arrives or the
    /// connection terminates.
    ///
    /// Only legal on wall-clock transports driven by dedicated threads (the
    /// legacy `Threads` backend, worker loops). Virtual-clock transports
    /// panic — they must be driven with [`try_recv`](Self::try_recv) +
    /// [`next_ready_at`](Self::next_ready_at) by the scheduler that owns the
    /// clock.
    ///
    /// # Errors
    ///
    /// [`RecvError::Closed`] or [`RecvError::PeerFailed`] as for
    /// [`try_recv`](Self::try_recv).
    fn recv(&self) -> Result<Message, RecvError>;

    /// Receives the next message, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time; otherwise as
    /// [`recv`](Self::recv).
    fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError>;

    /// Sends a control message whose wire size is negligible (heartbeats,
    /// goodbyes).
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] after either side closed,
    /// [`SendError::PeerFailed`] once the peer is suspected crashed,
    /// [`SendError::WouldBlock`] when the byte-bounded write buffer has no
    /// room (nothing sent; retry after the waker fires — for control frames
    /// like heartbeats, dropping the message is safe).
    fn send(&self, message: Message) -> Result<(), SendError>;

    /// Sends a data frame carrying `records` application records and `size`
    /// bytes on the wire (drives bandwidth modelling on simulated links and
    /// accounting on real ones).
    ///
    /// # Errors
    ///
    /// As for [`send`](Self::send). On [`SendError::WouldBlock`] no record
    /// was handed to the transport: callers park on the waker and retry the
    /// same frame rather than dropping or re-pulling its records.
    fn send_records_with_size(
        &self,
        message: Message,
        size: usize,
        records: u64,
    ) -> Result<(), SendError>;

    /// Registers `waker`, replacing any previous one. It is invoked whenever
    /// the transport may have become pollable (frame arrival, close, crash,
    /// peer drop). Spurious invocations are permitted.
    fn set_waker(&self, waker: Waker);

    /// Removes the registered waker, if any.
    fn clear_waker(&self);

    /// The earliest instant at which a currently-buffered frame or a pending
    /// crash suspicion matures, or `None` when no future event is scheduled.
    fn next_ready_at(&self) -> Option<Instant>;

    /// Closes the sending direction cleanly; the peer drains in-flight
    /// frames and then observes [`RecvError::Closed`].
    fn close(&self);

    /// Abandons the connection without notifying the peer, which only finds
    /// out via its failure detector ([`RecvError::PeerFailed`]).
    fn crash(&self);

    /// Whether the peer is currently believed alive (no crash suspicion, no
    /// observed close).
    fn is_peer_alive(&self) -> bool;

    /// Interval at which this link expects heartbeats; workers pace their
    /// keep-alives and the reactor schedules heartbeat timers from this.
    fn heartbeat_interval(&self) -> Duration;

    /// Fault-injection hook: severs the underlying *link* abruptly (as a
    /// route flap or Wi-Fi blip would) without crashing the endpoint. A
    /// plain transport treats this as [`crash`](Self::crash); a resumable
    /// transport (a reconnecting session over TCP) instead tears down its
    /// current socket and re-establishes the session, so the worker loop
    /// above it only ever observes a stretch of
    /// [`RecvError::Empty`]/[`SendError::WouldBlock`]. Scripted by
    /// [`FaultPlan::Disconnect`](pando_netsim::fault::FaultPlan::Disconnect).
    fn drop_link(&self) {
        self.crash();
    }
}

/// The in-process simulated channel is the first — and deterministic —
/// transport: every method delegates 1:1 to the inherent [`Endpoint`]
/// method with identical size accounting, so the virtual-clock fleet
/// simulator produces byte-identical canonical traces through the trait.
impl Transport for Endpoint<Message> {
    fn try_recv(&self) -> Result<Message, RecvError> {
        Endpoint::try_recv(self)
    }

    fn recv(&self) -> Result<Message, RecvError> {
        Endpoint::recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        Endpoint::recv_timeout(self, timeout)
    }

    fn send(&self, message: Message) -> Result<(), SendError> {
        Endpoint::send(self, message)
    }

    fn send_records_with_size(
        &self,
        message: Message,
        size: usize,
        records: u64,
    ) -> Result<(), SendError> {
        Endpoint::send_records_with_size(self, message, size, records)
    }

    fn set_waker(&self, waker: Waker) {
        Endpoint::set_waker(self, waker)
    }

    fn clear_waker(&self) {
        Endpoint::clear_waker(self)
    }

    fn next_ready_at(&self) -> Option<Instant> {
        Endpoint::next_ready_at(self)
    }

    fn close(&self) {
        Endpoint::close(self)
    }

    fn crash(&self) {
        Endpoint::crash(self)
    }

    fn is_peer_alive(&self) -> bool {
        Endpoint::is_peer_alive(self)
    }

    fn heartbeat_interval(&self) -> Duration {
        self.config().heartbeat_interval
    }
}

/// Forwarding impl so `Arc<dyn Transport>` (and `Arc<T>`) satisfy the
/// generic bounds on [`WorkerBuilder::spawn`](crate::worker::WorkerBuilder::spawn)
/// and friends without unwrapping.
impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn try_recv(&self) -> Result<Message, RecvError> {
        (**self).try_recv()
    }

    fn recv(&self) -> Result<Message, RecvError> {
        (**self).recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        (**self).recv_timeout(timeout)
    }

    fn send(&self, message: Message) -> Result<(), SendError> {
        (**self).send(message)
    }

    fn send_records_with_size(
        &self,
        message: Message,
        size: usize,
        records: u64,
    ) -> Result<(), SendError> {
        (**self).send_records_with_size(message, size, records)
    }

    fn set_waker(&self, waker: Waker) {
        (**self).set_waker(waker)
    }

    fn clear_waker(&self) {
        (**self).clear_waker()
    }

    fn next_ready_at(&self) -> Option<Instant> {
        (**self).next_ready_at()
    }

    fn close(&self) {
        (**self).close()
    }

    fn crash(&self) {
        (**self).crash()
    }

    fn is_peer_alive(&self) -> bool {
        (**self).is_peer_alive()
    }

    fn heartbeat_interval(&self) -> Duration {
        (**self).heartbeat_interval()
    }

    fn drop_link(&self) {
        (**self).drop_link()
    }
}

/// A failure raised by a transport backend, classified into a small set of
/// [`TransportErrorKind`]s that map onto the existing
/// [`StreamError`]/[`RecvError`]/[`SendError`] taxonomy rather than adding a
/// parallel error enum per backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    kind: TransportErrorKind,
    message: String,
}

/// Broad classification of a [`TransportError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TransportErrorKind {
    /// The connection was closed cleanly by either side.
    Closed,
    /// The peer crashed or the link failed mid-flight (I/O error, EOF
    /// without a close notice, heartbeat timeout).
    PeerFailed,
    /// The remote spoke a different protocol or violated framing rules
    /// (bad magic, version mismatch, oversized frame, undecodable message).
    Protocol,
    /// A local I/O problem unrelated to the peer (bind failure, socket
    /// configuration).
    Io,
    /// The byte-bounded write buffer has no room for the frame right now.
    /// Transient: nothing was sent and the link is healthy; the registered
    /// waker fires when space frees.
    WouldBlock,
}

impl TransportError {
    /// Creates an error of the given kind.
    pub fn new(kind: TransportErrorKind, message: impl Into<String>) -> Self {
        Self { kind, message: message.into() }
    }

    /// The broad classification of the failure.
    pub fn kind(&self) -> TransportErrorKind {
        self.kind
    }

    /// The human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(err: std::io::Error) -> Self {
        use std::io::ErrorKind as IoKind;
        let kind = match err.kind() {
            IoKind::UnexpectedEof
            | IoKind::ConnectionReset
            | IoKind::ConnectionAborted
            | IoKind::BrokenPipe => TransportErrorKind::PeerFailed,
            IoKind::InvalidData => TransportErrorKind::Protocol,
            IoKind::WouldBlock => TransportErrorKind::WouldBlock,
            _ => TransportErrorKind::Io,
        };
        Self::new(kind, err.to_string())
    }
}

impl From<TransportError> for StreamError {
    fn from(err: TransportError) -> Self {
        match err.kind {
            TransportErrorKind::Protocol => StreamError::protocol(err.message),
            _ => StreamError::transport(err.message),
        }
    }
}

impl From<TransportError> for RecvError {
    fn from(err: TransportError) -> Self {
        match err.kind {
            TransportErrorKind::Closed => RecvError::Closed,
            _ => RecvError::PeerFailed,
        }
    }
}

impl From<TransportError> for SendError {
    fn from(err: TransportError) -> Self {
        match err.kind {
            TransportErrorKind::Closed => SendError::Closed,
            TransportErrorKind::WouldBlock => SendError::WouldBlock,
            _ => SendError::PeerFailed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pando_netsim::channel::{pair, ChannelConfig};

    fn dyn_pair() -> (Arc<dyn Transport>, Arc<dyn Transport>) {
        let (a, b) = pair::<Message>(ChannelConfig::instant());
        (Arc::new(a), Arc::new(b))
    }

    #[test]
    fn endpoint_round_trips_through_the_trait() {
        let (master, volunteer) = dyn_pair();
        master.send(Message::Heartbeat).unwrap();
        assert_eq!(volunteer.recv().unwrap(), Message::Heartbeat);
        master.close();
        assert_eq!(volunteer.recv().unwrap_err(), RecvError::Closed);
    }

    #[test]
    fn waker_fires_through_the_trait() {
        let (master, volunteer) = dyn_pair();
        let fired = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = fired.clone();
        volunteer.set_waker(Arc::new(move || {
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
        }));
        master.send(Message::Heartbeat).unwrap();
        assert!(fired.load(std::sync::atomic::Ordering::SeqCst));
        volunteer.clear_waker();
    }

    #[test]
    fn crash_is_detected_through_the_trait() {
        let (master, volunteer) = dyn_pair();
        volunteer.crash();
        std::thread::sleep(ChannelConfig::instant().failure_timeout + Duration::from_millis(5));
        assert!(!master.is_peer_alive());
        assert_eq!(master.try_recv().unwrap_err(), RecvError::PeerFailed);
    }

    #[test]
    fn heartbeat_interval_comes_from_the_channel_config() {
        let (master, _volunteer) = dyn_pair();
        assert_eq!(master.heartbeat_interval(), ChannelConfig::instant().heartbeat_interval);
    }

    #[test]
    fn io_errors_classify_into_kinds() {
        use std::io::{Error, ErrorKind as IoKind};
        let eof: TransportError = Error::new(IoKind::UnexpectedEof, "eof").into();
        assert_eq!(eof.kind(), TransportErrorKind::PeerFailed);
        let bad: TransportError = Error::new(IoKind::InvalidData, "bad").into();
        assert_eq!(bad.kind(), TransportErrorKind::Protocol);
        let other: TransportError = Error::new(IoKind::AddrInUse, "busy").into();
        assert_eq!(other.kind(), TransportErrorKind::Io);
    }

    #[test]
    fn transport_error_maps_into_the_existing_taxonomy() {
        let closed = TransportError::new(TransportErrorKind::Closed, "bye");
        assert_eq!(RecvError::from(closed.clone()), RecvError::Closed);
        assert_eq!(SendError::from(closed), SendError::Closed);

        let failed = TransportError::new(TransportErrorKind::PeerFailed, "gone");
        assert_eq!(RecvError::from(failed.clone()), RecvError::PeerFailed);
        let stream: StreamError = failed.into();
        assert!(stream.is_transport());

        let proto = TransportError::new(TransportErrorKind::Protocol, "bad magic");
        let stream: StreamError = proto.into();
        assert!(stream.is_protocol());
    }

    #[test]
    fn would_block_maps_transiently_not_terminally() {
        use std::io::{Error, ErrorKind as IoKind};
        let wb: TransportError = Error::new(IoKind::WouldBlock, "full").into();
        assert_eq!(wb.kind(), TransportErrorKind::WouldBlock);
        assert_eq!(SendError::from(wb), SendError::WouldBlock);
    }
}
