//! Length-prefixed [`Message`] frames over real TCP sockets.
//!
//! This is the first transport that takes the fleet out of the process: a
//! master in one OS process drives volunteer workers in other processes over
//! localhost (or LAN) TCP, through exactly the same reactor, lender and
//! failure-detection machinery the deterministic simulator exercises.
//!
//! # Readiness backend
//!
//! All connections in a process are multiplexed onto a fixed pool of
//! [`TcpConfig::poller_threads`] epoll poller threads (module `poller`,
//! syscall shim in `transport::sys`) instead of a read/write pump thread pair
//! per connection — a 64-volunteer master runs its transport on 2 threads,
//! not 128. Sockets are non-blocking; a per-connection state machine owns
//! partial-read reassembly (header → body, mid-frame truncation still
//! classified as a crash) and partial-write resumption, and every readiness
//! batch gives each ready connection a bounded slice of work so one
//! fire-hose peer cannot starve the rest (round-robin fairness via
//! level-triggered re-reporting).
//!
//! The outbound queue is **byte-bounded** at [`TcpConfig::write_buffer_max`]:
//! a send that would overflow the bound fails with [`SendError::WouldBlock`]
//! (nothing enqueued, link healthy) and the registered waker fires once the
//! queue drains below the bound — see the bounded-send row of the
//! [`Transport`] contract table. The legacy two-threads-per-connection
//! backend is kept behind the deprecated
//! [`TcpConfig::pump_threads_backend`] flag for A/B benchmarking and for
//! non-Linux targets, with the same bounded-queue semantics.
//!
//! # Wire format
//!
//! The wire format reuses the existing fallible codec verbatim — every frame
//! is what [`Message::encode`] produces (`tag: u8`, `len: u32` big-endian,
//! payload), with tag `0` reserved as a transport-level close marker so a
//! clean [`close`](Transport::close) is distinguishable from a crash.
//! A connection starts with a tiny hello carrying a *mode* byte:
//!
//! ```text
//! volunteer -> master:  b"PNDO" version:u8 mode:u8
//!                       [token:u64be recvd:u64be   (mode = RESUME only)]
//!                       name_len:u16be name bytes
//! master    -> volunteer: b"PNDO" version:u8 status:u8 token:u64be recvd:u64be
//! ```
//!
//! Mode `0` (*plain*) is the sessionless connection every test and simple
//! client uses: the reply's token is zero and nothing is buffered for
//! redelivery. Mode `1` (*new session*) asks the master to issue a session
//! token and wrap the link in a [`session::SessionTransport`] so a transient
//! disconnect parks the volunteer instead of crashing it. Mode `2`
//! (*resume*) presents a previously-issued token plus the count of data
//! frames the volunteer has received; the master answers with status `1`
//! and its own received count, and both sides redeliver exactly the frames
//! the other never saw (see the [`session`] module). An unknown or expired
//! token downgrades the resume to a fresh session (status `0`, new token) —
//! the volunteer rejoins as a new device rather than being rejected.
//!
//! # Which layer detects which failure class
//!
//! Three detectors run at different depths, fastest-first:
//!
//! 1. **Socket events** (this module): reset, EOF without the close marker,
//!    or EOF mid-frame short-circuit straight to
//!    [`RecvError::PeerFailed`] — process crashes on a live network are
//!    caught in milliseconds.
//! 2. **Application heartbeats** ([`FailureDetector`]): every arriving
//!    frame refreshes `last_heard`; `failure_timeout` of silence marks the
//!    peer failed even when the socket looks healthy. This is the only
//!    layer that catches a *wedged* peer process whose kernel still ACKs.
//! 3. **TCP keepalive** ([`TcpConfig::keepalive`], probes paced from
//!    `heartbeat_interval`): kernel-level probing that reaps connections
//!    whose remote *host* vanished (power loss, cable pull) even if this
//!    process never tries to write — the probe failure surfaces as a socket
//!    error, feeding back into layer 1. Keepalive never produces false
//!    positives on an idle-but-healthy link: probes are answered by the
//!    peer's kernel without waking the application, so an idle connection
//!    outlives any number of heartbeat intervals as long as both layers
//!    above stay quiet.
//!
//! Crash detection therefore maps onto the same [`FailureDetector`] path as
//! the simulated channels, and crash re-lend and shard hopping work
//! unchanged over sockets.

#[cfg(target_os = "linux")]
pub(crate) mod poller;
pub mod session;

#[cfg(target_os = "linux")]
use super::sys;
use super::{Transport, TransportError, TransportErrorKind};
use crate::master::Pando;
use crate::protocol::Message;
use crate::transport::tcp::session::SessionTransport;
use bytes::{Bytes, BytesMut};
use pando_netsim::channel::{RecvError, SendError, Waker};
use pando_netsim::codec::{encode_frame, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use pando_netsim::heartbeat::FailureDetector;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// Magic bytes opening both handshake directions.
const MAGIC: [u8; 4] = *b"PNDO";
/// Version byte of the TCP wire protocol; bumped on incompatible change.
/// v2 added the hello mode byte and the 22-byte session reply.
pub const TCP_PROTOCOL_VERSION: u8 = 2;
/// Frame tag reserved for the transport-level close marker (the protocol's
/// message tags start at 1).
const TAG_CLOSE: u8 = 0;
/// Longest volunteer name accepted in the hello.
const MAX_NAME_LEN: usize = 256;
/// Read/write deadline applied only during the handshake so a stalled or
/// hostile client cannot wedge the accept loop.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Hello mode byte: sessionless connection (no token, no redelivery).
const HELLO_PLAIN: u8 = 0;
/// Hello mode byte: request a fresh resumable session.
const HELLO_NEW: u8 = 1;
/// Hello mode byte: resume a parked session (token + received count follow).
const HELLO_RESUME: u8 = 2;
/// Byte length of the v2 server reply: magic, version, status, token,
/// received count.
const REPLY_LEN: usize = 4 + 1 + 1 + 8 + 8;

/// Knobs of a TCP link. Liveness settings mirror
/// [`ChannelConfig`](pando_netsim::channel::ChannelConfig): heartbeats are
/// expected every `heartbeat_interval` and the peer is declared crashed
/// after `failure_timeout` of silence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// Interval between keep-alive heartbeats while a link is idle.
    pub heartbeat_interval: Duration,
    /// Silence after which the peer is suspected crashed; must exceed
    /// `heartbeat_interval`.
    pub failure_timeout: Duration,
    /// Disable Nagle's algorithm (`TCP_NODELAY`); latency beats batching for
    /// the small control frames of this protocol.
    pub nodelay: bool,
    /// Number of shared epoll poller threads multiplexing every TCP
    /// connection in the process. The pool is process-global and sized
    /// once, by the first connection created; later configs cannot resize
    /// it.
    pub poller_threads: usize,
    /// Byte bound on the per-connection outbound queue. A send that would
    /// push the queue past this bound fails with [`SendError::WouldBlock`]
    /// and the waker fires once the queue drains below the bound again; a
    /// single frame larger than the whole bound is admitted alone (never a
    /// permanent reject). This is what keeps a slow or stalled reader from
    /// growing master-side memory without bound.
    pub write_buffer_max: usize,
    /// Enable kernel `SO_KEEPALIVE` probing, paced from
    /// `heartbeat_interval` (rounded up to the kernel's 1s floor). See the
    /// module docs for how keepalive, heartbeats and socket events split
    /// the failure-detection work. Linux only; ignored elsewhere.
    pub keepalive: bool,
    /// How long a *session* volunteer (hello mode `NEW`/`RESUME`) may stay
    /// disconnected before the master reclassifies the transient disconnect
    /// as a crash and fires the re-lend path. Plain connections ignore this:
    /// for them a dropped socket is a crash immediately, as before.
    pub reconnect_grace: Duration,
    /// Use the legacy two-OS-threads-per-connection pump backend instead of
    /// the shared epoll poller. Kept for A/B benchmarking
    /// (`benches/tcp.rs`) and as the fallback on non-Linux targets, where
    /// it is used regardless of this flag.
    #[deprecated(note = "the epoll poller backend is the default; pump threads remain only for \
                A/B benchmarks and non-Linux fallback")]
    pub pump_threads_backend: bool,
}

impl Default for TcpConfig {
    #[allow(deprecated)]
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_secs(2),
            failure_timeout: Duration::from_secs(10),
            nodelay: true,
            poller_threads: 2,
            write_buffer_max: 1024 * 1024,
            keepalive: true,
            reconnect_grace: Duration::from_secs(30),
            pump_threads_backend: false,
        }
    }
}

impl TcpConfig {
    /// Tightened liveness windows for tests and localhost demos, where a
    /// crash should be detected in well under a second.
    pub fn local_test() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(50),
            failure_timeout: Duration::from_millis(400),
            reconnect_grace: Duration::from_secs(2),
            ..Self::default()
        }
    }

    /// Whether connections with this config run on the legacy pump-thread
    /// backend (explicitly requested, or forced on non-Linux targets).
    fn use_pump_backend(&self) -> bool {
        #[allow(deprecated)]
        let requested = self.pump_threads_backend;
        requested || !cfg!(target_os = "linux")
    }
}

/// Consumer-facing link state shared by the poller/pump threads and the
/// public API.
pub(crate) struct LinkState {
    /// Decoded messages not yet handed to the consumer, FIFO.
    inbox: VecDeque<Message>,
    /// Peer sent the close marker: drain the inbox, then report `Closed`.
    peer_closed: bool,
    /// The link died without a close marker (I/O error, EOF, bad frame,
    /// heartbeat timeout): report `PeerFailed` after draining.
    failed: Option<TransportError>,
    /// We closed our sending direction.
    locally_closed: bool,
    /// We abandoned the connection abruptly.
    crashed: bool,
    /// Last instant any frame arrived from the peer; feeds the detector.
    last_heard: Instant,
    /// Readiness callback, one slot.
    waker: Option<Waker>,
}

/// Inbound reassembly state, touched only by the thread currently reading
/// the socket (one poller thread, or the pump reader).
pub(crate) struct ReadState {
    /// Bytes received but not yet parsed into complete frames.
    buf: BytesMut,
    /// The read direction hit EOF; never read again.
    eof: bool,
}

/// Outbound queue and partial-write cursor, drained by the poller on
/// writable events (or by the pump writer thread).
pub(crate) struct WriteState {
    /// Fully-encoded frames awaiting the socket, FIFO. The close marker is
    /// queued as a regular frame so ordering falls out naturally.
    queue: VecDeque<Bytes>,
    /// Bytes of `queue[0]` already written (partial-write resumption;
    /// poller backend only — the pump writer blocks in `write_all`).
    offset: usize,
    /// Unwritten bytes across the whole queue; the admission bound.
    queued_bytes: usize,
    /// The close marker has been queued: no further frames are accepted,
    /// and once the queue drains the write half is shut down.
    closing: bool,
    /// The write half has been flushed and shut down after a clean close.
    shutdown_done: bool,
    /// `crash()` dropped the queue: stop writing, never shut down cleanly.
    aborted: bool,
    /// A send bounced with `WouldBlock`; fire the waker once the queue
    /// drains below the bound.
    blocked: bool,
    /// Interest mask currently registered with epoll (poller backend).
    /// Mutated only under this lock so interest updates cannot race.
    armed_interest: u32,
    /// Frames fully written to the socket.
    frames_written: u64,
    /// `write`/`writev` syscalls issued (vectored batching makes
    /// `frames_written / write_calls` exceed 1 under load).
    write_calls: u64,
    /// Payload bytes written to the socket.
    bytes_written: u64,
}

/// Everything one connection's threads share. Lock order within one link:
/// `read` → `write` → `state` → `registration`; never take an earlier lock
/// while holding a later one.
pub(crate) struct Shared {
    /// The socket itself; reads and writes go through `&TcpStream`.
    stream: TcpStream,
    state: Mutex<LinkState>,
    /// Signalled on every inbox/terminal-state change; backs blocking recv.
    recv_cv: Condvar,
    write: Mutex<WriteState>,
    /// Pump backend only: wakes the writer thread on enqueue.
    write_cv: Condvar,
    read: Mutex<ReadState>,
    /// EOF seen or link dead: drop read interest, never read again.
    read_closed: AtomicBool,
    /// Link failed or crashed: drop write interest, never write again.
    dead: AtomicBool,
    /// Poller-backend registration (epoll shard + token); `None` on the
    /// pump backend or after teardown.
    #[cfg(target_os = "linux")]
    registration: Mutex<Option<poller::Registration>>,
    /// Live [`TcpTransport`] handles over this link; the clean close on
    /// drop fires only when the last one goes.
    handles: AtomicUsize,
    detector: FailureDetector,
    config: TcpConfig,
}

impl Shared {
    /// Wakes blocking receivers and the registered reactor waker. Must be
    /// called after every state change that could make the link pollable.
    fn notify(&self, state: &LinkState) {
        self.recv_cv.notify_all();
        if let Some(waker) = &state.waker {
            waker();
        }
    }

    fn fail(&self, error: TransportError) {
        self.read_closed.store(true, Ordering::SeqCst);
        self.dead.store(true, Ordering::SeqCst);
        let mut state = self.state.lock();
        if state.failed.is_none() && !state.peer_closed {
            state.failed = Some(error);
        }
        self.notify(&state);
    }

    /// Drains every complete frame in `read.buf` into the inbox. Returns
    /// `false` when the link failed on a framing violation (the caller
    /// tears the socket down).
    fn drain_frames(&self, read: &mut ReadState) -> bool {
        loop {
            if read.buf.len() < FRAME_HEADER_LEN {
                return true;
            }
            let tag = read.buf[0];
            let len =
                u32::from_be_bytes([read.buf[1], read.buf[2], read.buf[3], read.buf[4]]) as usize;
            if len > MAX_FRAME_LEN {
                self.fail(TransportError::new(
                    TransportErrorKind::Protocol,
                    format!("incoming frame of {len} bytes exceeds the {MAX_FRAME_LEN} limit"),
                ));
                return false;
            }
            if read.buf.len() < FRAME_HEADER_LEN + len {
                return true;
            }
            let frame = read.buf.split_to(FRAME_HEADER_LEN + len);
            let mut state = self.state.lock();
            state.last_heard = Instant::now();
            if tag == TAG_CLOSE {
                state.peer_closed = true;
                self.notify(&state);
                // The peer will not send again; keep reading so the socket
                // drains to EOF.
                continue;
            }
            match Message::decode(&frame) {
                Ok(message) => {
                    state.inbox.push_back(message);
                    self.notify(&state);
                }
                Err(err) => {
                    drop(state);
                    self.fail(TransportError::new(
                        TransportErrorKind::Protocol,
                        format!("undecodable frame: {err}"),
                    ));
                    return false;
                }
            }
        }
    }

    /// Classifies EOF: without the close marker — or worse, mid-frame — it
    /// is a crash, not a clean shutdown.
    fn handle_eof(&self, read: &ReadState) {
        self.read_closed.store(true, Ordering::SeqCst);
        let mid_frame = !read.buf.is_empty();
        let mut state = self.state.lock();
        if !state.peer_closed && state.failed.is_none() {
            self.dead.store(true, Ordering::SeqCst);
            state.failed = Some(TransportError::new(
                TransportErrorKind::PeerFailed,
                if mid_frame {
                    "connection dropped mid-frame"
                } else {
                    "connection dropped without close marker"
                },
            ));
        }
        self.notify(&state);
    }

    /// Clears the would-block flag if the queue drained below the bound.
    /// Returns whether the caller must fire the waker (after releasing the
    /// write lock).
    fn maybe_unblock(&self, write: &mut WriteState) -> bool {
        if write.blocked && write.queued_bytes < self.config.write_buffer_max {
            write.blocked = false;
            true
        } else {
            false
        }
    }

    /// Fires receivers + waker after a `WouldBlock`ed sender got room again.
    fn notify_unblocked(&self) {
        let state = self.state.lock();
        self.notify(&state);
    }
}

/// One live TCP connection speaking the Pando frame protocol.
///
/// Created by [`TcpTransport::connect`] on the volunteer side or handed out
/// by a [`TcpAcceptor`] on the master side. Dropping the transport closes it
/// cleanly unless [`crash`](Transport::crash) was called first.
///
/// Clones share the underlying connection; a clone is a cheap handle for
/// observing [`stats`](TcpTransport::stats) after the original moved into a
/// worker or the reactor. The drop-close fires only when the last handle
/// goes away.
pub struct TcpTransport {
    shared: Arc<Shared>,
    /// Peer name from the handshake (volunteer side: our own name).
    peer: String,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.peer)
            .field("local", &self.shared.stream.local_addr().ok())
            .finish()
    }
}

/// A snapshot of one link's write-path counters, for the transport stats
/// line and the backpressure tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpLinkStats {
    /// Frames fully written to the socket.
    pub frames_written: u64,
    /// `write`/`writev` syscalls issued.
    pub write_calls: u64,
    /// Payload bytes written to the socket.
    pub bytes_written: u64,
    /// Unwritten bytes currently queued (bounded by
    /// [`TcpConfig::write_buffer_max`]).
    pub queued_bytes: usize,
}

impl TcpLinkStats {
    /// Average frames drained per `write`/`writev` syscall; above 1 means
    /// the vectored write path is batching under load.
    pub fn frames_per_write(&self) -> f64 {
        if self.write_calls == 0 {
            0.0
        } else {
            self.frames_written as f64 / self.write_calls as f64
        }
    }
}

impl TcpTransport {
    /// Connects to a master at `addr`, introduces this volunteer as `name`
    /// and returns the live transport.
    ///
    /// # Errors
    ///
    /// [`TransportErrorKind::Io`] if the connection cannot be established,
    /// [`TransportErrorKind::Protocol`] if the master answers with the wrong
    /// magic or an incompatible version.
    pub fn connect(
        addr: impl ToSocketAddrs,
        name: &str,
        config: TcpConfig,
    ) -> Result<Self, TransportError> {
        let outcome = dial(addr, name, &config, HelloMode::Plain)?;
        Ok(Self::from_stream(outcome.stream, name.to_string(), config))
    }

    /// Wires the shared state and hands the socket to the poller (default)
    /// or spawns the legacy pump thread pair.
    pub(crate) fn from_stream(stream: TcpStream, peer: String, config: TcpConfig) -> Self {
        #[cfg(target_os = "linux")]
        if config.keepalive {
            use std::os::unix::io::AsRawFd;
            // Best effort: a kernel that rejects the option still leaves
            // the two application-level detection layers above it.
            let _ = sys::set_keepalive(stream.as_raw_fd(), config.heartbeat_interval);
        }
        let pump = config.use_pump_backend();
        let detector = FailureDetector::new(config.heartbeat_interval, config.failure_timeout);
        let shared = Arc::new(Shared {
            stream,
            state: Mutex::new(LinkState {
                inbox: VecDeque::new(),
                peer_closed: false,
                failed: None,
                locally_closed: false,
                crashed: false,
                last_heard: Instant::now(),
                waker: None,
            }),
            recv_cv: Condvar::new(),
            write: Mutex::new(WriteState {
                queue: VecDeque::new(),
                offset: 0,
                queued_bytes: 0,
                closing: false,
                shutdown_done: false,
                aborted: false,
                blocked: false,
                armed_interest: 0,
                frames_written: 0,
                write_calls: 0,
                bytes_written: 0,
            }),
            write_cv: Condvar::new(),
            read: Mutex::new(ReadState { buf: BytesMut::with_capacity(16 * 1024), eof: false }),
            read_closed: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            #[cfg(target_os = "linux")]
            registration: Mutex::new(None),
            handles: AtomicUsize::new(1),
            detector,
            config,
        });

        if pump {
            Self::spawn_pumps(&shared, &peer);
        } else {
            #[cfg(target_os = "linux")]
            poller::register(&shared);
        }
        Self { shared, peer }
    }

    /// Starts the legacy reader/writer pump threads (one pair per link).
    fn spawn_pumps(shared: &Arc<Shared>, peer: &str) {
        let reader_shared = shared.clone();
        thread::Builder::new()
            .name(format!("tcp-read-{peer}"))
            .spawn(move || run_reader(reader_shared))
            .expect("spawn tcp reader thread");

        let writer_shared = shared.clone();
        thread::Builder::new()
            .name(format!("tcp-write-{peer}"))
            .spawn(move || run_writer(writer_shared))
            .expect("spawn tcp writer thread");
    }

    /// The peer's handshake name (on the master side) or this volunteer's
    /// own name (on the connecting side).
    pub fn peer_name(&self) -> &str {
        &self.peer
    }

    /// The socket address of the remote end.
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.shared.stream.peer_addr().ok()
    }

    /// Snapshot of the link's write-path counters.
    pub fn stats(&self) -> TcpLinkStats {
        let write = self.shared.write.lock();
        TcpLinkStats {
            frames_written: write.frames_written,
            write_calls: write.write_calls,
            bytes_written: write.bytes_written,
            queued_bytes: write.queued_bytes,
        }
    }

    /// Whether `SO_KEEPALIVE` is enabled on the socket (`None` where the
    /// option cannot be read, e.g. non-Linux builds).
    pub fn keepalive_enabled(&self) -> Option<bool> {
        #[cfg(target_os = "linux")]
        {
            use std::os::unix::io::AsRawFd;
            sys::keepalive_enabled(self.shared.stream.as_raw_fd()).ok()
        }
        #[cfg(not(target_os = "linux"))]
        {
            None
        }
    }

    /// Core non-blocking poll shared by `try_recv`/`recv_timeout`.
    fn poll_inbox(&self, state: &mut LinkState) -> Result<Message, RecvError> {
        if let Some(message) = state.inbox.pop_front() {
            return Ok(message);
        }
        if state.peer_closed {
            return Err(RecvError::Closed);
        }
        if state.crashed {
            return Err(RecvError::Closed);
        }
        if state.failed.is_some() {
            return Err(RecvError::PeerFailed);
        }
        if self.shared.detector.suspects_at(state.last_heard, Instant::now()) {
            state.failed = Some(TransportError::new(
                TransportErrorKind::PeerFailed,
                "peer silent past the failure timeout",
            ));
            return Err(RecvError::PeerFailed);
        }
        Err(RecvError::Empty)
    }

    /// Admits `frame` into the bounded outbound queue and nudges whichever
    /// backend drains it.
    fn enqueue_frame(&self, frame: Bytes) -> Result<(), SendError> {
        let shared = &self.shared;
        let mut write = shared.write.lock();
        if write.closing || write.aborted {
            return Err(SendError::Closed);
        }
        let size = frame.len();
        if write.queued_bytes > 0 && write.queued_bytes + size > shared.config.write_buffer_max {
            // Bound overflow: admit nothing, remember to wake the sender
            // once the drain dips below the bound. An oversized frame on an
            // empty queue is admitted alone instead of livelocking.
            write.blocked = true;
            return Err(SendError::WouldBlock);
        }
        write.queue.push_back(frame);
        write.queued_bytes += size;
        self.kick_writer(&mut write);
        Ok(())
    }

    /// Wakes the drain path after the queue changed: arms `EPOLLOUT` on the
    /// poller backend, signals the writer thread on the pump backend.
    fn kick_writer(&self, write: &mut WriteState) {
        #[cfg(target_os = "linux")]
        if !self.shared.config.use_pump_backend() {
            // Write-on-enqueue fast path: the socket is almost always
            // writable, so drain inline on the sender's thread instead of
            // paying an epoll wakeup of latency per frame. Only a partial
            // write (kernel buffer full) leaves residue, and
            // `update_interest` then arms `EPOLLOUT` so the poller resumes
            // it. A link already deregistered (peer gone, queue was idle)
            // takes the same path, best effort — that only ever carries
            // the close marker.
            poller::drain_write_locked(&self.shared, write);
            poller::update_interest(&self.shared, write);
            return;
        }
        let _ = write;
        self.shared.write_cv.notify_one();
    }

    fn send_frame(&self, message: &Message) -> Result<(), SendError> {
        {
            let state = self.shared.state.lock();
            if state.locally_closed || state.crashed {
                return Err(SendError::Closed);
            }
            if state.failed.is_some() {
                return Err(SendError::PeerFailed);
            }
            if state.peer_closed {
                return Err(SendError::Closed);
            }
        }
        let frame = match message.encode() {
            Ok(frame) => frame,
            Err(err) => {
                // An unencodable (oversized) frame poisons the link: the
                // peer could never receive it, so pretending it was sent
                // would silently drop records.
                self.shared.fail(TransportError::new(TransportErrorKind::Protocol, err.message()));
                return Err(SendError::PeerFailed);
            }
        };
        self.enqueue_frame(frame)
    }
}

impl Transport for TcpTransport {
    fn try_recv(&self) -> Result<Message, RecvError> {
        let mut state = self.shared.state.lock();
        self.poll_inbox(&mut state)
    }

    fn recv(&self) -> Result<Message, RecvError> {
        loop {
            match self.recv_timeout(self.shared.config.failure_timeout) {
                Err(RecvError::Timeout) => continue,
                other => return other,
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            match self.poll_inbox(&mut state) {
                Err(RecvError::Empty) => {}
                other => return other,
            }
            // Wake early enough to notice a heartbeat timeout even if the
            // caller asked for a longer wait.
            let suspect_at = state.last_heard + self.shared.config.failure_timeout;
            let wait_until = deadline.min(suspect_at);
            if Instant::now() >= wait_until {
                if Instant::now() >= deadline {
                    return Err(RecvError::Timeout);
                }
                continue; // suspicion matured; re-poll classifies it
            }
            self.shared.recv_cv.wait_until(&mut state, wait_until);
        }
    }

    fn send(&self, message: Message) -> Result<(), SendError> {
        self.send_frame(&message)
    }

    fn send_records_with_size(
        &self,
        message: Message,
        _size: usize,
        _records: u64,
    ) -> Result<(), SendError> {
        // Real sockets carry the actual bytes; the simulated bandwidth
        // accounting parameters are meaningless here.
        self.send_frame(&message)
    }

    fn set_waker(&self, waker: Waker) {
        let mut state = self.shared.state.lock();
        state.waker = Some(waker);
    }

    fn clear_waker(&self) {
        let mut state = self.shared.state.lock();
        state.waker = None;
    }

    fn next_ready_at(&self) -> Option<Instant> {
        let state = self.shared.state.lock();
        if state.peer_closed || state.crashed || state.failed.is_some() {
            return None;
        }
        if !state.inbox.is_empty() {
            return Some(Instant::now());
        }
        // The only future event a quiet socket schedules is crash suspicion
        // maturing; the reactor arms a timer for it so heartbeat-timeout
        // detection works without a dedicated thread.
        Some(state.last_heard + self.shared.config.failure_timeout)
    }

    fn close(&self) {
        {
            let mut state = self.shared.state.lock();
            if state.locally_closed || state.crashed {
                return;
            }
            state.locally_closed = true;
        }
        let mut write = self.shared.write.lock();
        if write.closing || write.aborted {
            return;
        }
        write.closing = true;
        let marker = encode_frame(TAG_CLOSE, b"").expect("empty close frame encodes");
        write.queued_bytes += marker.len();
        write.queue.push_back(marker);
        self.kick_writer(&mut write);
    }

    fn crash(&self) {
        {
            let mut state = self.shared.state.lock();
            if state.crashed {
                return;
            }
            state.crashed = true;
            self.shared.read_closed.store(true, Ordering::SeqCst);
            self.shared.dead.store(true, Ordering::SeqCst);
            self.shared.notify(&state);
        }
        {
            let mut write = self.shared.write.lock();
            write.aborted = true;
            write.queue.clear();
            write.queued_bytes = 0;
            write.offset = 0;
            self.shared.write_cv.notify_one();
        }
        #[cfg(target_os = "linux")]
        poller::deregister(&self.shared);
        // Abrupt: no close marker, both directions torn down. The peer sees
        // EOF (or a reset) without the marker and classifies it as a crash.
        let _ = self.shared.stream.shutdown(Shutdown::Both);
    }

    fn is_peer_alive(&self) -> bool {
        let state = self.shared.state.lock();
        state.failed.is_none()
            && !state.peer_closed
            && !self.shared.detector.suspects_at(state.last_heard, Instant::now())
    }

    fn heartbeat_interval(&self) -> Duration {
        self.shared.config.heartbeat_interval
    }
}

impl Clone for TcpTransport {
    fn clone(&self) -> Self {
        self.shared.handles.fetch_add(1, Ordering::SeqCst);
        Self { shared: self.shared.clone(), peer: self.peer.clone() }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        if self.shared.handles.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.close();
        }
    }
}

/// Legacy reader pump: socket bytes → frames → decoded messages → inbox +
/// waker. One blocking thread per connection.
fn run_reader(shared: Arc<Shared>) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let mut read = shared.read.lock();
        match (&shared.stream).read(&mut chunk) {
            Ok(0) => {
                read.eof = true;
                shared.handle_eof(&read);
                return;
            }
            Ok(n) => {
                read.buf.extend_from_slice(&chunk[..n]);
                if !shared.drain_frames(&mut read) {
                    let _ = shared.stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => {
                shared.fail(err.into());
                return;
            }
        }
    }
}

/// Legacy writer pump: outbound queue → socket. Exits after flushing the
/// close marker or on the first I/O error (reported as a link failure).
fn run_writer(shared: Arc<Shared>) {
    loop {
        let frame = {
            let mut write = shared.write.lock();
            loop {
                if write.aborted {
                    return; // crash() cleared the queue
                }
                if let Some(frame) = write.queue.pop_front() {
                    break Some(frame);
                }
                if write.closing {
                    break None; // marker already written; finish up
                }
                shared.write_cv.wait(&mut write);
            }
        };
        match frame {
            Some(frame) => {
                if let Err(err) = (&shared.stream).write_all(&frame) {
                    shared.fail(err.into());
                    return;
                }
                let unblock = {
                    let mut write = shared.write.lock();
                    write.queued_bytes = write.queued_bytes.saturating_sub(frame.len());
                    write.frames_written += 1;
                    write.write_calls += 1;
                    write.bytes_written += frame.len() as u64;
                    shared.maybe_unblock(&mut write)
                };
                if unblock {
                    shared.notify_unblocked();
                }
            }
            None => {
                // Queue drained after close(): the marker is on the wire.
                if (&shared.stream).flush().is_ok() {
                    let _ = shared.stream.shutdown(Shutdown::Write);
                }
                shared.write.lock().shutdown_done = true;
                return;
            }
        }
    }
}

/// Counts this process's live transport threads (names starting `tcp-`:
/// pollers, the acceptor, and any legacy pump threads). `None` where
/// `/proc` is unavailable. This is what the CI fleet job asserts stays
/// O(`poller_threads`) instead of O(connections).
pub fn transport_thread_census() -> Option<usize> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut count = 0;
    for task in tasks.flatten() {
        let comm = std::fs::read_to_string(task.path().join("comm")).unwrap_or_default();
        if comm.trim_end().starts_with("tcp-") {
            count += 1;
        }
    }
    Some(count)
}

/// What a connecting client asks for in its hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HelloMode {
    /// Sessionless connection: no token, no redelivery (the v1 behaviour).
    Plain,
    /// Issue a fresh session token.
    New,
    /// Resume a parked session: present the token and how many data frames
    /// this side has received on the session so far.
    Resume {
        /// The master-issued session token from the original hello.
        token: u64,
        /// Data frames this client has received on the session.
        recvd: u64,
    },
}

/// A completed client dial: the handshaken socket plus the master's reply.
pub(crate) struct DialOutcome {
    pub(crate) stream: TcpStream,
    /// The master resumed the presented session (status byte `1`).
    pub(crate) resumed: bool,
    /// The session token in force from here on (zero for plain mode).
    pub(crate) token: u64,
    /// Data frames the master has received on the session.
    pub(crate) peer_recvd: u64,
}

/// Client side of the v2 handshake: connects, writes the hello for `mode`
/// and parses the 22-byte reply. Shared by [`TcpTransport::connect`] (plain
/// mode) and the reconnecting session transport (new/resume modes).
pub(crate) fn dial(
    addr: impl ToSocketAddrs,
    name: &str,
    config: &TcpConfig,
    mode: HelloMode,
) -> Result<DialOutcome, TransportError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(config.nodelay)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT))?;

    let name_bytes = name.as_bytes();
    if name_bytes.is_empty() || name_bytes.len() > MAX_NAME_LEN {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!("volunteer name must be 1..={MAX_NAME_LEN} bytes"),
        ));
    }
    let mut hello = Vec::with_capacity(MAGIC.len() + 2 + 16 + 2 + name_bytes.len());
    hello.extend_from_slice(&MAGIC);
    hello.push(TCP_PROTOCOL_VERSION);
    match mode {
        HelloMode::Plain => hello.push(HELLO_PLAIN),
        HelloMode::New => hello.push(HELLO_NEW),
        HelloMode::Resume { token, recvd } => {
            hello.push(HELLO_RESUME);
            hello.extend_from_slice(&token.to_be_bytes());
            hello.extend_from_slice(&recvd.to_be_bytes());
        }
    }
    hello.extend_from_slice(&(name_bytes.len() as u16).to_be_bytes());
    hello.extend_from_slice(name_bytes);
    let mut stream_ref = &stream;
    stream_ref.write_all(&hello)?;

    let mut reply = [0u8; REPLY_LEN];
    stream_ref.read_exact(&mut reply)?;
    if reply[..4] != MAGIC {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            "master answered with wrong magic (not a pando master?)",
        ));
    }
    if reply[4] != TCP_PROTOCOL_VERSION {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!(
                "protocol version mismatch: master speaks v{}, this build speaks v{}",
                reply[4], TCP_PROTOCOL_VERSION
            ),
        ));
    }
    let resumed = match reply[5] {
        0 => false,
        1 => true,
        other => {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!("unknown handshake status byte {other}"),
            ))
        }
    };
    let token = u64::from_be_bytes(reply[6..14].try_into().expect("8-byte slice"));
    let peer_recvd = u64::from_be_bytes(reply[14..22].try_into().expect("8-byte slice"));

    stream.set_read_timeout(None)?;
    stream.set_write_timeout(None)?;
    Ok(DialOutcome { stream, resumed, token, peer_recvd })
}

/// The parsed client half of the v2 handshake.
struct ClientHello {
    mode: HelloMode,
    name: String,
}

/// Reads and validates the client hello. The caller owns the handshake
/// timeouts and the reply.
fn read_client_hello(stream: &TcpStream) -> Result<ClientHello, TransportError> {
    let mut stream_ref = stream;
    let mut head = [0u8; 6];
    stream_ref.read_exact(&mut head)?;
    if head[..4] != MAGIC {
        return Err(TransportError::new(TransportErrorKind::Protocol, "client sent wrong magic"));
    }
    if head[4] != TCP_PROTOCOL_VERSION {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!(
                "protocol version mismatch: client speaks v{}, this build speaks v{}",
                head[4], TCP_PROTOCOL_VERSION
            ),
        ));
    }
    let mode = match head[5] {
        HELLO_PLAIN => HelloMode::Plain,
        HELLO_NEW => HelloMode::New,
        HELLO_RESUME => {
            let mut body = [0u8; 16];
            stream_ref.read_exact(&mut body)?;
            HelloMode::Resume {
                token: u64::from_be_bytes(body[..8].try_into().expect("8-byte slice")),
                recvd: u64::from_be_bytes(body[8..].try_into().expect("8-byte slice")),
            }
        }
        other => {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!("unknown hello mode byte {other}"),
            ))
        }
    };
    let mut len = [0u8; 2];
    stream_ref.read_exact(&mut len)?;
    let name_len = u16::from_be_bytes(len) as usize;
    if name_len == 0 || name_len > MAX_NAME_LEN {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!("volunteer name length {name_len} outside 1..={MAX_NAME_LEN}"),
        ));
    }
    let mut name = vec![0u8; name_len];
    stream_ref.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| {
        TransportError::new(TransportErrorKind::Protocol, "volunteer name is not UTF-8")
    })?;
    Ok(ClientHello { mode, name })
}

/// Writes the 22-byte server reply.
fn write_server_reply(
    stream: &TcpStream,
    resumed: bool,
    token: u64,
    recvd: u64,
) -> Result<(), TransportError> {
    let mut reply = [0u8; REPLY_LEN];
    reply[..4].copy_from_slice(&MAGIC);
    reply[4] = TCP_PROTOCOL_VERSION;
    reply[5] = u8::from(resumed);
    reply[6..14].copy_from_slice(&token.to_be_bytes());
    reply[14..22].copy_from_slice(&recvd.to_be_bytes());
    let mut stream_ref = stream;
    stream_ref.write_all(&reply)?;
    Ok(())
}

/// One handshaken inbound connection, classified by its hello mode.
pub enum SessionEvent {
    /// A sessionless (mode `PLAIN`) volunteer: the raw link, exactly as v1
    /// handed it out. A dropped socket is a crash.
    Plain {
        /// The volunteer's self-declared name.
        name: String,
        /// The live link.
        transport: TcpTransport,
    },
    /// A new resumable session was issued (mode `NEW`, or a resume whose
    /// token had expired). Register the transport as a fresh volunteer; it
    /// survives transient disconnects within
    /// [`TcpConfig::reconnect_grace`].
    Joined {
        /// The volunteer's self-declared name.
        name: String,
        /// The session-wrapped link.
        transport: Arc<SessionTransport>,
    },
    /// A parked session was resumed (mode `RESUME` with a live token): the
    /// existing [`SessionTransport`] swallowed the new socket and replayed
    /// unacked frames. There is nothing to register — the volunteer never
    /// left the master's books.
    Resumed {
        /// The volunteer's self-declared name.
        name: String,
    },
}

/// Listening socket that accepts volunteer connections and performs the
/// handshake.
pub struct TcpAcceptor {
    listener: TcpListener,
    config: TcpConfig,
    /// Parked and live resumable sessions by token. Weak: a session the
    /// master dropped (driver finished, crash re-lend fired) cannot be
    /// resumed — the returning client is downgraded to a fresh join.
    sessions: Mutex<HashMap<u64, Weak<SessionTransport>>>,
    next_token: AtomicU64,
}

impl TcpAcceptor {
    /// Binds a listener on `addr` (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// [`TransportErrorKind::Io`] if the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs, config: TcpConfig) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            config,
            sessions: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
        })
    }

    /// The bound address, including the resolved port.
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (never on a bound socket).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has a local address")
    }

    /// Accepts one pending *plain-mode* connection, if any, and runs the
    /// handshake. Returns `Ok(None)` when no connection is waiting. A
    /// session-mode client (hello mode `NEW`/`RESUME`) is rejected through
    /// this API — use [`TcpAcceptor::accept_session`] (or
    /// [`TcpAcceptor::serve`], which routes all three modes) when resumable
    /// volunteers are expected.
    ///
    /// # Errors
    ///
    /// Handshake failures ([`TransportErrorKind::Protocol`]) and accept
    /// errors ([`TransportErrorKind::Io`]); both leave the acceptor usable.
    pub fn accept(&self) -> Result<Option<(String, TcpTransport)>, TransportError> {
        match self.accept_session()? {
            None => Ok(None),
            Some(SessionEvent::Plain { name, transport }) => Ok(Some((name, transport))),
            Some(SessionEvent::Joined { name, .. }) | Some(SessionEvent::Resumed { name }) => {
                Err(TransportError::new(
                    TransportErrorKind::Protocol,
                    format!("session-mode client {name} on the plain accept API"),
                ))
            }
        }
    }

    /// Accepts one pending connection, if any, runs the handshake and
    /// classifies it by hello mode: a plain link, a freshly-issued session,
    /// or a resume absorbed by an existing parked [`SessionTransport`].
    /// Returns `Ok(None)` when no connection is waiting.
    ///
    /// # Errors
    ///
    /// Handshake failures ([`TransportErrorKind::Protocol`]) and accept
    /// errors ([`TransportErrorKind::Io`]); both leave the acceptor usable.
    pub fn accept_session(&self) -> Result<Option<SessionEvent>, TransportError> {
        match self.listener.accept() {
            Ok((stream, _addr)) => self.handshake(stream).map(Some),
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(err) => Err(err.into()),
        }
    }

    /// Master side of the v2 handshake: reads the hello, answers it, and
    /// builds the matching transport. On a resume the reply is written
    /// *before* the socket joins the poller, so the replayed frames are the
    /// first bytes the client sees after the reply.
    fn handshake(&self, stream: TcpStream) -> Result<SessionEvent, TransportError> {
        stream.set_nodelay(self.config.nodelay)?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT))?;
        let hello = read_client_hello(&stream)?;
        match hello.mode {
            HelloMode::Plain => {
                write_server_reply(&stream, false, 0, 0)?;
                stream.set_read_timeout(None)?;
                stream.set_write_timeout(None)?;
                let transport =
                    TcpTransport::from_stream(stream, hello.name.clone(), self.config.clone());
                Ok(SessionEvent::Plain { name: hello.name, transport })
            }
            HelloMode::New => self.start_session(stream, hello.name),
            HelloMode::Resume { token, recvd } => {
                let existing = self.sessions.lock().get(&token).and_then(Weak::upgrade);
                match existing.filter(|s| s.resumable() && s.volunteer_name() == hello.name) {
                    Some(session) => {
                        write_server_reply(&stream, true, token, session.recvd())?;
                        stream.set_read_timeout(None)?;
                        stream.set_write_timeout(None)?;
                        let transport = TcpTransport::from_stream(
                            stream,
                            hello.name.clone(),
                            self.config.clone(),
                        );
                        session.reattach(transport, recvd);
                        Ok(SessionEvent::Resumed { name: hello.name })
                    }
                    // Unknown, expired or mismatched token: the volunteer
                    // rejoins as a new device instead of being turned away
                    // (its stale results will be dropped as late duplicates).
                    None => self.start_session(stream, hello.name),
                }
            }
        }
    }

    /// Issues a fresh token, answers the hello and registers the new
    /// session in the table.
    fn start_session(
        &self,
        stream: TcpStream,
        name: String,
    ) -> Result<SessionEvent, TransportError> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        write_server_reply(&stream, false, token, 0)?;
        stream.set_read_timeout(None)?;
        stream.set_write_timeout(None)?;
        let transport = TcpTransport::from_stream(stream, name.clone(), self.config.clone());
        let session = SessionTransport::new(token, name.clone(), transport, self.config.clone());
        let mut sessions = self.sessions.lock();
        sessions.retain(|_, weak| weak.strong_count() > 0);
        sessions.insert(token, Arc::downgrade(&session));
        Ok(SessionEvent::Joined { name, transport: session })
    }

    /// Spawns an accept loop that registers every handshaken volunteer with
    /// `pando` under its self-declared name — plain links as-is, session
    /// links behind their [`SessionTransport`], resumes absorbed silently.
    /// Handshake failures are counted and skipped — one bad client must not
    /// take the fleet down.
    pub fn serve(self, pando: &Pando) -> TcpServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let resumed = Arc::new(AtomicUsize::new(0));
        let stop_flag = stop.clone();
        let accepted_counter = accepted.clone();
        let resumed_counter = resumed.clone();
        let pando = pando.clone();
        let handle = thread::Builder::new()
            .name("tcp-accept".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::SeqCst) {
                    match self.accept_session() {
                        Ok(Some(SessionEvent::Plain { name, transport })) => {
                            pando.add_volunteer_transport(name, Arc::new(transport));
                            accepted_counter.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(Some(SessionEvent::Joined { name, transport })) => {
                            pando.add_volunteer_transport(name, transport);
                            accepted_counter.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(Some(SessionEvent::Resumed { .. })) => {
                            resumed_counter.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(None) => thread::sleep(Duration::from_millis(5)),
                        Err(_) => {
                            // Rejected handshake or transient accept error;
                            // keep listening.
                            thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
            })
            .expect("spawn tcp accept thread");
        TcpServerHandle { stop, accepted, resumed, handle }
    }
}

/// Handle to a running [`TcpAcceptor::serve`] loop.
pub struct TcpServerHandle {
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    resumed: Arc<AtomicUsize>,
    handle: thread::JoinHandle<()>,
}

impl TcpServerHandle {
    /// Asks the accept loop to stop after its current iteration.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// How many volunteers have handshaken so far. Live — callers can gate
    /// the start of a run on a minimum fleet size. Resumes of parked
    /// sessions are *not* counted here (the volunteer never left); see
    /// [`TcpServerHandle::resumed`].
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// How many parked sessions have been resumed by returning volunteers.
    pub fn resumed(&self) -> usize {
        self.resumed.load(Ordering::SeqCst)
    }

    /// Blocks until at least `count` volunteers have handshaken or `timeout`
    /// elapses; returns whether the quorum was reached.
    pub fn wait_for_volunteers(&self, count: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.accepted() < count {
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Stops the loop and returns how many volunteers were accepted.
    pub fn join(self) -> usize {
        self.stop();
        let _ = self.handle.join();
        self.accepted.load(Ordering::SeqCst)
    }
}
