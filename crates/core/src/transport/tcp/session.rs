//! Resumable volunteer sessions over TCP.
//!
//! A plain [`TcpTransport`] equates a dropped socket with a crash, which is
//! the wrong verdict for the most common WAN event: a transient disconnect
//! (a Wi-Fi blip, a NAT rebinding, a laptop lid). This module layers a
//! *session* over the raw link so a returning volunteer rejoins under its
//! old name and budget instead of being declared dead:
//!
//! * `SessionCore` (private) holds the durable half of a session — the
//!   token, cumulative data-frame counters for both directions, and a
//!   bounded buffer of sent-but-unacknowledged frames for redelivery.
//! * [`SessionTransport`] is the **master-side** wrapper: when the active
//!   socket dies it *parks* the session instead of surfacing
//!   [`RecvError::PeerFailed`], and only after
//!   [`TcpConfig::reconnect_grace`] without a resume does it deliver the
//!   failure verdict — at which point the existing crash re-lend path fires
//!   unchanged. A resume routed in by the acceptor swaps in the new socket
//!   and replays every unacked frame the client reports missing.
//! * [`ReconnectingTcpTransport`] is the **worker-side** wrapper: on a
//!   socket failure it redials in a background thread with the jittered
//!   exponential [`Backoff`] from `core::protocol`, presenting its session
//!   token and received count (`RESUME <token> <recvd>`); while down it
//!   answers [`RecvError::Empty`] and buffers outbound results, so the
//!   worker loop needs no new cases beyond its existing would-block
//!   parking.
//!
//! # Acks are garbage collection, counters are truth
//!
//! Each side counts the *data* frames ([`Message::is_data`]) it has
//! received and piggybacks a cumulative [`Message::Ack`] every few frames.
//! Acks only trim the peer's redelivery buffer — **which** frames to replay
//! after a reconnect is decided solely by the received-counts exchanged in
//! the resume handshake. A frame is therefore redelivered exactly when the
//! other side never received it: no duplicate results, no lost tasks. (The
//! lender's late/duplicate-result drop remains as a second line of defence
//! for the pathological case of a half-open old socket delivering a frame
//! after the counts were exchanged.)
//!
//! ```text
//! worker                                master
//!   │── PNDO v2 NEW "tablet-7" ──────────▶│ issue token 42, SessionTransport
//!   │◀─ PNDO v2 status=0 token=42 recvd=0─│
//!   │── Task/Result frames, Ack every 8 ──│   (both directions)
//!   ✂ link drops                          │ park session, grace timer arms
//!   │   backoff: 50ms, 100ms, ...         │
//!   │── PNDO v2 RESUME 42 recvd=17 ──────▶│ token live → reattach
//!   │◀─ PNDO v2 status=1 token=42 recvd=9─│
//!   │◀─ replay of sent frames 18.. ───────│ (worker replays its 10.. too)
//!   │── ordinary traffic resumes ─────────│
//! ```

use super::{dial, HelloMode, TcpConfig, TcpTransport};
use crate::protocol::{Backoff, Message};
use crate::transport::{Transport, TransportError, TransportErrorKind};
use pando_netsim::channel::{RecvError, SendError, Waker};
use parking_lot::Mutex;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A cumulative [`Message::Ack`] is emitted every this many received data
/// frames, bounding the peer's redelivery buffer to a handful of frames of
/// slack beyond the in-flight window.
const ACK_EVERY: u64 = 8;

/// Knobs of the worker-side reconnect loop, mapped straight onto
/// [`Backoff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// First retry delay; doubles per attempt.
    pub base: Duration,
    /// Ceiling on the nominal delay.
    pub cap: Duration,
    /// Redial attempts before the transport gives up and reports a
    /// permanent [`RecvError::PeerFailed`].
    pub max_attempts: u32,
    /// Jitter seed, so a fleet knocked offline together does not redial in
    /// lock-step (give each volunteer a distinct seed).
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            max_attempts: 10,
            seed: 0x5EED,
        }
    }
}

impl ReconnectPolicy {
    /// Fast retries for tests and localhost demos, aligned with
    /// [`TcpConfig::local_test`]'s tightened liveness windows.
    pub fn local_test() -> Self {
        Self {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            max_attempts: 40,
            ..Self::default()
        }
    }
}

/// The durable half of a session, shared by every incarnation of the link.
struct SessionCore {
    token: AtomicU64,
    name: String,
    /// Bound on the unacked-frame buffer, in wire bytes (the session-layer
    /// counterpart of [`TcpConfig::write_buffer_max`]). A data send that
    /// would overflow it fails with [`SendError::WouldBlock`] and the waker
    /// fires once an ack trims the buffer below the bound.
    max_unacked_bytes: usize,
    state: Mutex<SessionState>,
    /// The consumer's registered waker (reactor driver or worker loop),
    /// fired on inbox activity of the active link, on ack-driven unblocking
    /// and on every link transition. One slot, like every transport.
    waker: Mutex<Option<Waker>>,
}

struct SessionState {
    /// Data frames sent on this session (the redelivery sequence).
    sent: u64,
    /// Data frames received on this session; reported in the resume hello
    /// and used by the peer to trim its replay.
    recvd: u64,
    /// `recvd` as of the last cumulative ack we emitted.
    ack_announced: u64,
    /// Sent data frames the peer has not acknowledged, oldest first, keyed
    /// by their position in the `sent` sequence (1-based).
    unacked: std::collections::VecDeque<(u64, Message)>,
    /// Wire bytes across `unacked`; the admission bound.
    unacked_bytes: usize,
    /// A data send bounced on the bound; fire the waker once acks trim it.
    blocked: bool,
}

impl SessionCore {
    fn new(token: u64, name: String, max_unacked_bytes: usize) -> Self {
        Self {
            token: AtomicU64::new(token),
            name,
            max_unacked_bytes,
            state: Mutex::new(SessionState {
                sent: 0,
                recvd: 0,
                ack_announced: 0,
                unacked: std::collections::VecDeque::new(),
                unacked_bytes: 0,
                blocked: false,
            }),
            waker: Mutex::new(None),
        }
    }

    fn token(&self) -> u64 {
        self.token.load(Ordering::SeqCst)
    }

    fn recvd(&self) -> u64 {
        self.state.lock().recvd
    }

    fn fire_waker(&self) {
        let waker = self.waker.lock().clone();
        if let Some(waker) = waker {
            waker();
        }
    }

    /// A waker for the active [`TcpTransport`] that forwards into the
    /// session's slot, surviving link swaps (the slot is read at fire time).
    fn forwarder(self: &Arc<Self>) -> Waker {
        let core = self.clone();
        Arc::new(move || core.fire_waker())
    }

    /// Whether a data frame of `size` wire bytes fits the unacked bound.
    /// Mirrors the socket queue's admission rule: an oversized frame on an
    /// empty buffer is admitted alone instead of livelocking. Records the
    /// would-block so the next trim fires the waker.
    fn admit(&self, size: usize) -> Result<(), SendError> {
        let mut state = self.state.lock();
        if state.unacked_bytes > 0 && state.unacked_bytes + size > self.max_unacked_bytes {
            state.blocked = true;
            return Err(SendError::WouldBlock);
        }
        Ok(())
    }

    /// Books a data frame into the redelivery buffer after it was admitted.
    fn record_sent(&self, message: &Message) {
        if !message.is_data() {
            return;
        }
        let mut state = self.state.lock();
        state.sent += 1;
        state.unacked_bytes += message.wire_size();
        let seq = state.sent;
        state.unacked.push_back((seq, message.clone()));
    }

    /// Counts an inbound data frame; `Some(count)` when a cumulative ack is
    /// due to the peer.
    fn note_received(&self, message: &Message) -> Option<u64> {
        if !message.is_data() {
            return None;
        }
        let mut state = self.state.lock();
        state.recvd += 1;
        if state.recvd - state.ack_announced >= ACK_EVERY {
            state.ack_announced = state.recvd;
            Some(state.recvd)
        } else {
            None
        }
    }

    /// Applies a cumulative ack from the peer: frames up to `count` leave
    /// the redelivery buffer. Fires the waker if a bounded sender was
    /// waiting for room.
    fn apply_ack(&self, count: u64) {
        let mut state = self.state.lock();
        let unblocked = Self::trim_locked(&mut state, count, self.max_unacked_bytes);
        drop(state);
        if unblocked {
            self.fire_waker();
        }
    }

    fn trim_locked(state: &mut SessionState, count: u64, max: usize) -> bool {
        while let Some((seq, message)) = state.unacked.front() {
            if *seq > count {
                break;
            }
            state.unacked_bytes = state.unacked_bytes.saturating_sub(message.wire_size());
            let _ = seq;
            state.unacked.pop_front();
        }
        if state.blocked && state.unacked_bytes < max {
            state.blocked = false;
            true
        } else {
            false
        }
    }

    /// Resume bookkeeping: drops everything the peer reports having
    /// received (its count is authoritative) and returns clones of the
    /// remaining frames, oldest first, for replay on the fresh socket. The
    /// frames stay in the buffer — they are still unacked.
    fn replay_after(&self, peer_recvd: u64) -> Vec<Message> {
        let mut state = self.state.lock();
        let unblocked = Self::trim_locked(&mut state, peer_recvd, self.max_unacked_bytes);
        let replay = state.unacked.iter().map(|(_, message)| message.clone()).collect();
        drop(state);
        if unblocked {
            self.fire_waker();
        }
        replay
    }

    /// The master issued a fresh token instead of resuming (the old session
    /// expired): restart the counters and drop the stale replay buffer —
    /// its results would be late duplicates of re-lent values anyway.
    fn rebind(&self, token: u64) {
        self.token.store(token, Ordering::SeqCst);
        let mut state = self.state.lock();
        state.sent = 0;
        state.recvd = 0;
        state.ack_announced = 0;
        state.unacked.clear();
        state.unacked_bytes = 0;
        let unblocked = state.blocked;
        state.blocked = false;
        drop(state);
        if unblocked {
            self.fire_waker();
        }
    }
}

/// Link incarnation state shared by both session wrappers.
enum Link {
    /// A live socket carries the session.
    Up(TcpTransport),
    /// The socket died; the session is parked (master) or redialing
    /// (worker) since the recorded instant.
    Down { since: Instant },
    /// The session ended cleanly (goodbye/close marker, or a local close
    /// while down).
    Closed,
    /// The session failed permanently: grace expired (master) or the
    /// backoff budget ran out (worker).
    Failed,
}

/// Drains the active link: acks are absorbed into the session, data frames
/// are counted (emitting a cumulative ack on cadence), everything else
/// passes through.
fn pump_recv(core: &SessionCore, active: &TcpTransport) -> Result<Message, RecvError> {
    loop {
        match active.try_recv() {
            Ok(Message::Ack { count }) => {
                core.apply_ack(count);
                continue;
            }
            Ok(message) => {
                if let Some(count) = core.note_received(&message) {
                    // Best effort: a refused ack is re-announced with the
                    // next one (they are cumulative).
                    let _ = active.send(Message::Ack { count });
                }
                return Ok(message);
            }
            Err(err) => return Err(err),
        }
    }
}

/// Replays one buffered frame on a fresh socket, riding out transient
/// would-blocks. An `Err` means the new socket died already.
fn replay_frame(active: &TcpTransport, message: &Message) -> Result<(), SendError> {
    loop {
        match active.send(message.clone()) {
            Ok(()) => return Ok(()),
            Err(SendError::WouldBlock) => thread::sleep(Duration::from_millis(1)),
            Err(err) => return Err(err),
        }
    }
}

/// The master-side session wrapper: a [`Transport`] whose failure verdict
/// distinguishes *disconnected* from *crashed*.
///
/// While the socket is up it behaves like the wrapped [`TcpTransport`],
/// plus ack bookkeeping. When the socket fails (reset, EOF, heartbeat
/// silence) the session *parks*: receives answer [`RecvError::Empty`],
/// data sends are buffered (bounded) for replay, heartbeats are dropped,
/// and [`Transport::next_ready_at`] points at the grace deadline so the
/// reactor's timer re-polls exactly when the verdict is due. A resume
/// within [`TcpConfig::reconnect_grace`] swaps in the new socket and
/// replays unacked frames; past it, the wrapper reports
/// [`RecvError::PeerFailed`] once and the unchanged crash re-lend path
/// takes over.
pub struct SessionTransport {
    core: Arc<SessionCore>,
    link: Mutex<Link>,
    grace: Duration,
    heartbeat_interval: Duration,
}

impl std::fmt::Debug for SessionTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTransport")
            .field("token", &self.core.token())
            .field("name", &self.core.name)
            .finish()
    }
}

impl SessionTransport {
    /// Wraps a freshly-handshaken socket in a new session.
    pub(crate) fn new(
        token: u64,
        name: String,
        transport: TcpTransport,
        config: TcpConfig,
    ) -> Arc<Self> {
        let core = Arc::new(SessionCore::new(token, name, config.write_buffer_max));
        transport.set_waker(core.forwarder());
        Arc::new(Self {
            core,
            link: Mutex::new(Link::Up(transport)),
            grace: config.reconnect_grace,
            heartbeat_interval: config.heartbeat_interval,
        })
    }

    /// The session token the acceptor issued.
    pub fn token(&self) -> u64 {
        self.core.token()
    }

    /// The volunteer name bound to the session.
    pub fn volunteer_name(&self) -> &str {
        &self.core.name
    }

    /// Data frames received from the volunteer on this session; the count
    /// the resume reply reports so the client can trim its replay.
    pub(crate) fn recvd(&self) -> u64 {
        self.core.recvd()
    }

    /// Whether a resume can still be absorbed (the session neither ended
    /// cleanly nor expired past its grace window).
    pub(crate) fn resumable(&self) -> bool {
        !matches!(&*self.link.lock(), Link::Closed | Link::Failed)
    }

    /// Currently parked, waiting out the grace window?
    pub fn is_parked(&self) -> bool {
        matches!(&*self.link.lock(), Link::Down { .. })
    }

    /// Absorbs a resumed connection: tears down whatever socket the session
    /// last held, trims the redelivery buffer by the client's received
    /// count, replays the remainder in order on the fresh socket and goes
    /// live again. Called by the acceptor after it wrote the resume reply
    /// (so the replay follows the reply on the wire).
    pub(crate) fn reattach(&self, transport: TcpTransport, client_recvd: u64) {
        let mut link = self.link.lock();
        match &*link {
            Link::Closed | Link::Failed => {
                // The session ended while the handshake was in flight; the
                // client will observe the dead socket, redial and be issued
                // a fresh session.
                transport.crash();
                return;
            }
            Link::Up(old) => old.crash(),
            Link::Down { .. } => {}
        }
        for message in self.core.replay_after(client_recvd) {
            if replay_frame(&transport, &message).is_err() {
                // The fresh socket died before the replay finished: park
                // again and wait for the next resume (the buffer still
                // holds everything unacked).
                transport.crash();
                *link = Link::Down { since: Instant::now() };
                return;
            }
        }
        transport.set_waker(self.core.forwarder());
        *link = Link::Up(transport);
        drop(link);
        self.core.fire_waker();
    }

    /// Shared send path for both the plain and the record-counting entry
    /// points.
    fn send_message(
        &self,
        message: Message,
        records: Option<(usize, u64)>,
    ) -> Result<(), SendError> {
        let mut link = self.link.lock();
        loop {
            match &*link {
                Link::Up(active) => {
                    if message.is_data() {
                        self.core.admit(message.wire_size())?;
                    }
                    let sent = match records {
                        Some((size, count)) => {
                            active.send_records_with_size(message.clone(), size, count)
                        }
                        None => active.send(message.clone()),
                    };
                    match sent {
                        Ok(()) => {
                            self.core.record_sent(&message);
                            return Ok(());
                        }
                        Err(SendError::PeerFailed) => {
                            // Transient verdict: park and fall through to
                            // the parked arm, which buffers or drops.
                            *link = Link::Down { since: Instant::now() };
                            continue;
                        }
                        Err(err) => return Err(err),
                    }
                }
                Link::Down { since } => {
                    if since.elapsed() >= self.grace {
                        *link = Link::Failed;
                        return Err(SendError::PeerFailed);
                    }
                    if message.is_data() {
                        self.core.admit(message.wire_size())?;
                        self.core.record_sent(&message);
                    }
                    // Control frames (heartbeats) are dropped while parked:
                    // cheap to lose, pointless to replay.
                    return Ok(());
                }
                Link::Closed => return Err(SendError::Closed),
                Link::Failed => return Err(SendError::PeerFailed),
            }
        }
    }
}

impl Transport for SessionTransport {
    fn try_recv(&self) -> Result<Message, RecvError> {
        let mut link = self.link.lock();
        loop {
            match &*link {
                Link::Up(active) => match pump_recv(&self.core, active) {
                    Ok(message) => return Ok(message),
                    Err(RecvError::Empty) => return Err(RecvError::Empty),
                    Err(RecvError::Timeout) => return Err(RecvError::Timeout),
                    Err(RecvError::Closed) => {
                        *link = Link::Closed;
                        return Err(RecvError::Closed);
                    }
                    Err(RecvError::PeerFailed) => {
                        // The disconnect verdict: park instead of failing.
                        *link = Link::Down { since: Instant::now() };
                        continue;
                    }
                },
                Link::Down { since } => {
                    if since.elapsed() >= self.grace {
                        // Grace expired without a resume: the crash verdict,
                        // surfaced exactly like a plain transport would.
                        *link = Link::Failed;
                        return Err(RecvError::PeerFailed);
                    }
                    return Err(RecvError::Empty);
                }
                Link::Closed => return Err(RecvError::Closed),
                Link::Failed => return Err(RecvError::PeerFailed),
            }
        }
    }

    fn recv(&self) -> Result<Message, RecvError> {
        loop {
            match self.recv_timeout(self.grace.max(self.heartbeat_interval)) {
                Err(RecvError::Timeout) => continue,
                other => return other,
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_recv() {
                Err(RecvError::Empty) => {}
                other => return other,
            }
            if Instant::now() >= deadline {
                return Err(RecvError::Timeout);
            }
            // Cross-incarnation blocking would need a condvar shared with
            // every future socket; a short poll keeps it simple and only
            // the legacy thread backend ever blocks here.
            thread::sleep(Duration::from_millis(1));
        }
    }

    fn send(&self, message: Message) -> Result<(), SendError> {
        self.send_message(message, None)
    }

    fn send_records_with_size(
        &self,
        message: Message,
        size: usize,
        records: u64,
    ) -> Result<(), SendError> {
        self.send_message(message, Some((size, records)))
    }

    fn set_waker(&self, waker: Waker) {
        *self.core.waker.lock() = Some(waker);
    }

    fn clear_waker(&self) {
        *self.core.waker.lock() = None;
    }

    fn next_ready_at(&self) -> Option<Instant> {
        match &*self.link.lock() {
            Link::Up(active) => active.next_ready_at(),
            // The reactor arms a timer for the grace deadline, so the
            // disconnected→crashed reclassification needs no extra thread.
            Link::Down { since } => Some(*since + self.grace),
            Link::Closed | Link::Failed => None,
        }
    }

    fn close(&self) {
        let mut link = self.link.lock();
        match &*link {
            Link::Up(active) => active.close(),
            Link::Down { .. } => *link = Link::Closed,
            Link::Closed | Link::Failed => {}
        }
    }

    fn crash(&self) {
        let mut link = self.link.lock();
        if let Link::Up(active) = &*link {
            active.crash();
        }
        *link = Link::Closed;
    }

    fn is_peer_alive(&self) -> bool {
        match &*self.link.lock() {
            // A suspected-but-not-yet-parked link still counts as alive:
            // the next poll parks it and sends start buffering.
            Link::Up(_) => true,
            Link::Down { since } => since.elapsed() < self.grace,
            Link::Closed | Link::Failed => false,
        }
    }

    fn heartbeat_interval(&self) -> Duration {
        self.heartbeat_interval
    }
}

/// Shared state behind every clone of a [`ReconnectingTcpTransport`].
struct ReconnectShared {
    core: Arc<SessionCore>,
    link: Mutex<Link>,
    addrs: Vec<SocketAddr>,
    config: TcpConfig,
    policy: ReconnectPolicy,
    /// A redial thread is running; transitions spawn at most one.
    redialing: AtomicBool,
    /// The consumer closed or crashed the transport: stop redialing.
    closed: AtomicBool,
}

/// The worker-side session wrapper: a [`TcpTransport`] that survives link
/// loss by redialing with jittered exponential backoff and resuming its
/// session.
///
/// While the link is down, receives answer [`RecvError::Empty`] (the worker
/// loop's ordinary idle case), results are buffered up to the session bound
/// ([`SendError::WouldBlock`] beyond it — the same parking the loop already
/// handles), and heartbeats are dropped. Once the backoff budget is spent
/// the transport reports a permanent [`RecvError::PeerFailed`], matching a
/// real crash. Clones share the session, like [`TcpTransport`] clones share
/// the socket.
///
/// [`Transport::drop_link`] severs the current socket *without* ending the
/// session — the hook [`FaultPlan::Disconnect`] uses to script a flap.
///
/// [`FaultPlan::Disconnect`]: pando_netsim::fault::FaultPlan::Disconnect
#[derive(Clone)]
pub struct ReconnectingTcpTransport {
    shared: Arc<ReconnectShared>,
}

impl std::fmt::Debug for ReconnectingTcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReconnectingTcpTransport")
            .field("token", &self.shared.core.token())
            .field("name", &self.shared.core.name)
            .finish()
    }
}

impl ReconnectingTcpTransport {
    /// Connects to a master at `addr`, introduces this volunteer as `name`
    /// and opens a resumable session.
    ///
    /// # Errors
    ///
    /// Like [`TcpTransport::connect`]: [`TransportErrorKind::Io`] when the
    /// initial connection cannot be established (the backoff only governs
    /// *re*connects), [`TransportErrorKind::Protocol`] on a bad handshake.
    pub fn connect(
        addr: impl ToSocketAddrs,
        name: &str,
        config: TcpConfig,
        policy: ReconnectPolicy,
    ) -> Result<Self, TransportError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(TransportError::new(
                TransportErrorKind::Io,
                "address resolved to no socket addresses",
            ));
        }
        let outcome = dial(&addrs[..], name, &config, HelloMode::New)?;
        let transport = TcpTransport::from_stream(outcome.stream, name.to_string(), config.clone());
        let core =
            Arc::new(SessionCore::new(outcome.token, name.to_string(), config.write_buffer_max));
        transport.set_waker(core.forwarder());
        Ok(Self {
            shared: Arc::new(ReconnectShared {
                core,
                link: Mutex::new(Link::Up(transport)),
                addrs,
                config,
                policy,
                redialing: AtomicBool::new(false),
                closed: AtomicBool::new(false),
            }),
        })
    }

    /// The session token issued by the master (changes if an expired
    /// session was downgraded to a fresh join).
    pub fn token(&self) -> u64 {
        self.shared.core.token()
    }

    /// Whether the link is currently down with the redial loop working on
    /// it.
    pub fn is_reconnecting(&self) -> bool {
        matches!(&*self.shared.link.lock(), Link::Down { .. })
    }

    /// Parks the link and makes sure a redial thread is running. Must be
    /// called with the link lock held having just set `Link::Down`.
    fn ensure_redial(shared: &Arc<ReconnectShared>) {
        if shared.closed.load(Ordering::SeqCst) {
            return;
        }
        if shared.redialing.swap(true, Ordering::SeqCst) {
            return;
        }
        let runner = shared.clone();
        thread::Builder::new()
            .name(format!("pando-redial-{}", shared.core.name))
            .spawn(move || run_redial(runner))
            .expect("spawn session redial thread");
    }
}

/// Body of the worker-side redial thread: sleeps out the backoff schedule,
/// re-dials with `RESUME <token> <recvd>`, replays whatever the master
/// reports missing and swaps the fresh socket in. Exits on success, on a
/// closed transport, or with `Link::Failed` once the attempt budget is
/// spent.
fn run_redial(shared: Arc<ReconnectShared>) {
    let mut backoff = Backoff::new(
        shared.policy.base,
        shared.policy.cap,
        shared.policy.max_attempts,
        shared.policy.seed,
    );
    loop {
        if shared.closed.load(Ordering::SeqCst) {
            break;
        }
        let Some(delay) = backoff.next_delay() else {
            let mut link = shared.link.lock();
            if matches!(&*link, Link::Down { .. }) {
                *link = Link::Failed;
            }
            drop(link);
            shared.core.fire_waker();
            break;
        };
        thread::sleep(delay);
        if shared.closed.load(Ordering::SeqCst) {
            break;
        }
        let mode = HelloMode::Resume { token: shared.core.token(), recvd: shared.core.recvd() };
        let Ok(outcome) = dial(&shared.addrs[..], &shared.core.name, &shared.config, mode) else {
            continue;
        };
        let transport = TcpTransport::from_stream(
            outcome.stream,
            shared.core.name.clone(),
            shared.config.clone(),
        );
        let mut link = shared.link.lock();
        if shared.closed.load(Ordering::SeqCst) || !matches!(&*link, Link::Down { .. }) {
            transport.crash();
            break;
        }
        if outcome.resumed {
            let replay = shared.core.replay_after(outcome.peer_recvd);
            if replay.iter().any(|message| replay_frame(&transport, message).is_err()) {
                // The fresh socket died during the replay; burn the attempt
                // and keep dialing.
                transport.crash();
                continue;
            }
        } else {
            // The master no longer knows the session (grace expired, or it
            // restarted): start over under the fresh token. Stale results
            // would be dropped master-side as late duplicates anyway.
            shared.core.rebind(outcome.token);
        }
        transport.set_waker(shared.core.forwarder());
        *link = Link::Up(transport);
        drop(link);
        shared.core.fire_waker();
        break;
    }
    shared.redialing.store(false, Ordering::SeqCst);
    // Self-heal: a failure observed while this thread was winding down must
    // not leave the link stranded without a redialer.
    if !shared.closed.load(Ordering::SeqCst) && matches!(&*shared.link.lock(), Link::Down { .. }) {
        ReconnectingTcpTransport::ensure_redial(&shared);
    }
}

impl Transport for ReconnectingTcpTransport {
    fn try_recv(&self) -> Result<Message, RecvError> {
        let shared = &self.shared;
        let mut link = shared.link.lock();
        loop {
            match &*link {
                Link::Up(active) => match pump_recv(&shared.core, active) {
                    Ok(message) => return Ok(message),
                    Err(RecvError::Empty) => return Err(RecvError::Empty),
                    Err(RecvError::Timeout) => return Err(RecvError::Timeout),
                    Err(RecvError::Closed) => {
                        *link = Link::Closed;
                        return Err(RecvError::Closed);
                    }
                    Err(RecvError::PeerFailed) => {
                        *link = Link::Down { since: Instant::now() };
                        ReconnectingTcpTransport::ensure_redial(shared);
                        continue;
                    }
                },
                // Down reads as idle: the redial thread owns recovery, and
                // the worker loop's heartbeat/would-block parking already
                // copes with an idle stretch.
                Link::Down { .. } => return Err(RecvError::Empty),
                Link::Closed => return Err(RecvError::Closed),
                Link::Failed => return Err(RecvError::PeerFailed),
            }
        }
    }

    fn recv(&self) -> Result<Message, RecvError> {
        loop {
            match self.recv_timeout(self.shared.config.failure_timeout) {
                Err(RecvError::Timeout) => continue,
                other => return other,
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_recv() {
                Err(RecvError::Empty) => {}
                other => return other,
            }
            if Instant::now() >= deadline {
                return Err(RecvError::Timeout);
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    fn send(&self, message: Message) -> Result<(), SendError> {
        let shared = &self.shared;
        let mut link = shared.link.lock();
        loop {
            match &*link {
                Link::Up(active) => {
                    if message.is_data() {
                        shared.core.admit(message.wire_size())?;
                    }
                    match active.send(message.clone()) {
                        Ok(()) => {
                            shared.core.record_sent(&message);
                            return Ok(());
                        }
                        Err(SendError::PeerFailed) => {
                            *link = Link::Down { since: Instant::now() };
                            ReconnectingTcpTransport::ensure_redial(shared);
                            continue;
                        }
                        Err(err) => return Err(err),
                    }
                }
                Link::Down { .. } => {
                    if message.is_data() {
                        shared.core.admit(message.wire_size())?;
                        shared.core.record_sent(&message);
                    }
                    return Ok(());
                }
                Link::Closed => return Err(SendError::Closed),
                Link::Failed => return Err(SendError::PeerFailed),
            }
        }
    }

    fn send_records_with_size(
        &self,
        message: Message,
        _size: usize,
        _records: u64,
    ) -> Result<(), SendError> {
        self.send(message)
    }

    fn set_waker(&self, waker: Waker) {
        *self.shared.core.waker.lock() = Some(waker);
    }

    fn clear_waker(&self) {
        *self.shared.core.waker.lock() = None;
    }

    fn next_ready_at(&self) -> Option<Instant> {
        match &*self.shared.link.lock() {
            Link::Up(active) => active.next_ready_at(),
            // Re-poll within a heartbeat; the redial thread fires the waker
            // the moment the session is live again.
            Link::Down { .. } => Some(Instant::now() + self.shared.config.heartbeat_interval),
            Link::Closed | Link::Failed => None,
        }
    }

    fn close(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        let mut link = self.shared.link.lock();
        match &*link {
            Link::Up(active) => active.close(),
            Link::Down { .. } => *link = Link::Closed,
            Link::Closed | Link::Failed => {}
        }
    }

    fn crash(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        let mut link = self.shared.link.lock();
        if let Link::Up(active) = &*link {
            active.crash();
        }
        *link = Link::Closed;
    }

    fn is_peer_alive(&self) -> bool {
        match &*self.shared.link.lock() {
            Link::Up(_) | Link::Down { .. } => true,
            Link::Closed | Link::Failed => false,
        }
    }

    fn heartbeat_interval(&self) -> Duration {
        self.shared.config.heartbeat_interval
    }

    /// Severs the current socket abruptly *without* ending the session: the
    /// master sees a socket event and parks the session; this side redials
    /// with backoff and resumes. This is the scripted-flap hook — a crash
    /// would be [`Transport::crash`].
    fn drop_link(&self) {
        let shared = &self.shared;
        let mut link = shared.link.lock();
        if let Link::Up(active) = &*link {
            active.crash();
            *link = Link::Down { since: Instant::now() };
            ReconnectingTcpTransport::ensure_redial(shared);
        }
    }
}
