//! The process-global epoll readiness loop behind [`TcpTransport`].
//!
//! ```text
//!            conns (round-robin over shards)
//!   ┌─────────┬─────────┬─────────┬─────────┬─────────┐
//!   │ conn 0  │ conn 1  │ conn 2  │ conn 3  │ conn N  │   non-blocking
//!   └────┬────┴────┬────┴────┬────┴────┬────┴────┬────┘   sockets
//!        └────┐    └──────┐  └───┐     └──┐      │
//!         ┌───▼───────────▼──┐ ┌─▼────────▼──────▼───┐
//!         │ shard 0 (epoll)  │ │ shard 1 (epoll)     │  … poller_threads
//!         │ thread tcp-poll-0│ │ thread tcp-poll-1   │    shards total
//!         └──────────────────┘ └─────────────────────┘
//! ```
//!
//! Each shard owns one epoll instance and a disjoint subset of the
//! process's connections (assigned round-robin at registration), so shards
//! never contend on each other. Level-triggered interest is maintained as
//! `EPOLLIN | EPOLLRDHUP` while the read half is open, plus `EPOLLOUT`
//! exactly while the outbound queue is non-empty — every interest change
//! happens under the connection's write lock, so an enqueue can never race
//! a drain into a lost wakeup.
//!
//! Fairness: a readable event reads at most a few chunks and a writable
//! event writes at most a bounded burst before moving to the next ready
//! connection; level-triggered epoll re-reports the remainder on the next
//! `epoll_wait`, which is what gives round-robin progress across a fleet
//! with one fire-hose peer. Each `epoll_wait` (bounded at 100ms) is
//! followed by a sweep that runs the same heartbeat-suspicion check the
//! lazy receive path uses, so a silent peer is detected even when nobody is
//! polling its transport.
//!
//! [`TcpTransport`]: super::TcpTransport

use super::super::sys;
use super::{Shared, WriteState};
use crate::transport::{TransportError, TransportErrorKind};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::Shutdown;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// Interest kept while the read half is open.
const READ_INTEREST: u32 = sys::EPOLLIN | sys::EPOLLRDHUP;
/// Readiness bits that mean "try reading" (errors and hangups surface as
/// a read result, which classifies them precisely).
const READ_EVENTS: u32 = sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR;
/// Most frames drained with a single vectored write.
const MAX_FRAMES_PER_WRITE: usize = 16;
/// Byte cap per writable event; the remainder is re-reported by
/// level-triggered epoll so other ready connections get their turn.
const MAX_BYTES_PER_EVENT: usize = 256 * 1024;
/// Chunk-read cap per readable event, for the same fairness reason.
const MAX_CHUNKS_PER_EVENT: usize = 4;
/// Upper bound on `epoll_wait` so the suspicion sweep runs regularly.
const WAIT_TIMEOUT: Duration = Duration::from_millis(100);

/// One epoll instance plus the connections assigned to it.
struct Shard {
    epoll: sys::Epoll,
    conns: Mutex<HashMap<u64, Arc<Shared>>>,
}

/// A connection's membership in a shard; dropped (taken) exactly once at
/// teardown.
pub(crate) struct Registration {
    shard: Arc<Shard>,
    token: u64,
}

static SHARDS: OnceLock<Vec<Arc<Shard>>> = OnceLock::new();
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(0);

fn spawn_shards(threads: usize) -> Vec<Arc<Shard>> {
    (0..threads)
        .map(|i| {
            let shard = Arc::new(Shard {
                epoll: sys::Epoll::new().expect("create epoll instance"),
                conns: Mutex::new(HashMap::new()),
            });
            let runner = shard.clone();
            thread::Builder::new()
                .name(format!("tcp-poll-{i}"))
                .spawn(move || run(runner))
                .expect("spawn tcp poller thread");
            shard
        })
        .collect()
}

/// Puts the socket in non-blocking mode and assigns the connection to a
/// shard. The pool is spawned on first use, sized by that connection's
/// [`poller_threads`](super::TcpConfig::poller_threads).
pub(crate) fn register(shared: &Arc<Shared>) {
    let threads = shared.config.poller_threads.clamp(1, 64);
    let shards = SHARDS.get_or_init(|| spawn_shards(threads));
    let shard = shards[NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % shards.len()].clone();
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    shared.stream.set_nonblocking(true).expect("set TCP socket non-blocking");
    shard.conns.lock().insert(token, shared.clone());
    let mut write = shared.write.lock();
    write.armed_interest = READ_INTEREST;
    *shared.registration.lock() = Some(Registration { shard: shard.clone(), token });
    shard
        .epoll
        .add(shared.stream.as_raw_fd(), READ_INTEREST, token)
        .expect("register TCP socket with epoll");
    // The queue is empty at construction, but recompute anyway so any
    // exotic ordering still arms EPOLLOUT.
    update_interest(shared, &mut write);
}

/// Removes the connection from its shard (used by `crash()`; the caller
/// owns the socket shutdown).
pub(crate) fn deregister(shared: &Shared) {
    teardown(shared, false);
}

/// Recomputes the epoll interest mask from the connection's current state
/// and applies it if changed. MUST be called with the write lock held —
/// that is the invariant that makes "queue non-empty ⇒ EPOLLOUT armed"
/// race-free.
pub(crate) fn update_interest(shared: &Shared, write: &mut WriteState) {
    let reg = shared.registration.lock();
    let Some(reg) = reg.as_ref() else { return };
    let mut interest = 0u32;
    if !shared.read_closed.load(Ordering::SeqCst) {
        interest |= READ_INTEREST;
    }
    let pending = !write.aborted
        && !shared.dead.load(Ordering::SeqCst)
        && (!write.queue.is_empty() || (write.closing && !write.shutdown_done));
    if pending {
        interest |= sys::EPOLLOUT;
    }
    if interest != write.armed_interest {
        let _ = reg.shard.epoll.modify(shared.stream.as_raw_fd(), interest, reg.token);
        write.armed_interest = interest;
    }
}

/// Drains the bounded write queue with vectored writes until the socket
/// would block, the per-event byte budget runs out, or the queue empties
/// (then flushes the clean-close shutdown if one is pending). Called with
/// the write lock held.
pub(crate) fn drain_write_locked(shared: &Shared, write: &mut WriteState) {
    if write.aborted || shared.dead.load(Ordering::SeqCst) {
        return;
    }
    let mut budget = MAX_BYTES_PER_EVENT;
    while !write.queue.is_empty() && budget > 0 {
        let result = {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(write.queue.len().min(MAX_FRAMES_PER_WRITE));
            let mut frames = write.queue.iter();
            if let Some(first) = frames.next() {
                slices.push(IoSlice::new(&first[write.offset..]));
            }
            for frame in frames.take(MAX_FRAMES_PER_WRITE - 1) {
                slices.push(IoSlice::new(frame));
            }
            (&shared.stream).write_vectored(&slices)
        };
        match result {
            Ok(0) => {
                shared.fail(TransportError::new(
                    TransportErrorKind::Io,
                    "socket accepted zero bytes",
                ));
                return;
            }
            Ok(n) => {
                write.write_calls += 1;
                write.bytes_written += n as u64;
                write.queued_bytes = write.queued_bytes.saturating_sub(n);
                budget = budget.saturating_sub(n);
                // Advance the partial-write cursor: pop fully-written
                // frames, remember the offset into the first survivor.
                let mut remaining = n;
                while remaining > 0 {
                    let avail = write.queue[0].len() - write.offset;
                    if remaining >= avail {
                        write.queue.pop_front();
                        write.offset = 0;
                        write.frames_written += 1;
                        remaining -= avail;
                    } else {
                        write.offset += remaining;
                        remaining = 0;
                    }
                }
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
            Err(err) => {
                shared.fail(err.into());
                return;
            }
        }
    }
    if write.queue.is_empty() && write.closing && !write.shutdown_done {
        // The close marker is on the wire: finish the clean close.
        if (&shared.stream).flush().is_ok() {
            let _ = shared.stream.shutdown(Shutdown::Write);
        }
        write.shutdown_done = true;
    }
}

fn handle_writable(shared: &Arc<Shared>) {
    let unblock = {
        let mut write = shared.write.lock();
        drain_write_locked(shared, &mut write);
        let unblock = shared.maybe_unblock(&mut write);
        update_interest(shared, &mut write);
        unblock
    };
    if unblock {
        shared.notify_unblocked();
    }
}

fn handle_readable(shared: &Arc<Shared>) {
    let mut read = shared.read.lock();
    if read.eof || shared.read_closed.load(Ordering::SeqCst) {
        return;
    }
    let mut chunk = [0u8; 16 * 1024];
    for _ in 0..MAX_CHUNKS_PER_EVENT {
        match (&shared.stream).read(&mut chunk) {
            Ok(0) => {
                read.eof = true;
                shared.handle_eof(&read);
                return;
            }
            Ok(n) => {
                read.buf.extend_from_slice(&chunk[..n]);
                if !shared.drain_frames(&mut read) {
                    drop(read);
                    teardown(shared, true);
                    return;
                }
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
            Err(err) => {
                drop(read);
                shared.fail(err.into());
                teardown(shared, true);
                return;
            }
        }
    }
}

/// Deregisters a connection whose work is done: dead links immediately,
/// cleanly-finished links once both directions are quiet. Otherwise just
/// refreshes interest (e.g. dropping `EPOLLIN` after EOF).
fn maybe_teardown(shared: &Arc<Shared>) {
    if shared.dead.load(Ordering::SeqCst) {
        teardown(shared, true);
        return;
    }
    if !shared.read_closed.load(Ordering::SeqCst) {
        return;
    }
    let mut write = shared.write.lock();
    let idle = write.queue.is_empty() && (write.shutdown_done || !write.closing);
    if idle {
        drop(write);
        teardown(shared, false);
    } else {
        update_interest(shared, &mut write);
    }
}

fn teardown(shared: &Shared, hard: bool) {
    let reg = shared.registration.lock().take();
    if let Some(reg) = reg {
        let _ = reg.shard.epoll.delete(shared.stream.as_raw_fd());
        reg.shard.conns.lock().remove(&reg.token);
    }
    if hard {
        let _ = shared.stream.shutdown(Shutdown::Both);
    }
}

/// Runs the same heartbeat-timeout check the lazy receive path performs,
/// so a silent peer is detected even when nobody polls its transport.
fn sweep(shard: &Shard) {
    let conns: Vec<Arc<Shared>> = shard.conns.lock().values().cloned().collect();
    let now = Instant::now();
    for shared in conns {
        let mut state = shared.state.lock();
        if state.peer_closed || state.crashed || state.failed.is_some() {
            continue;
        }
        if shared.detector.suspects_at(state.last_heard, now) {
            shared.read_closed.store(true, Ordering::SeqCst);
            shared.dead.store(true, Ordering::SeqCst);
            state.failed = Some(TransportError::new(
                TransportErrorKind::PeerFailed,
                "peer silent past the failure timeout",
            ));
            shared.notify(&state);
            drop(state);
            teardown(&shared, true);
        }
    }
}

fn run(shard: Arc<Shard>) {
    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 128];
    loop {
        let n = shard.epoll.wait(&mut events, Some(WAIT_TIMEOUT)).unwrap_or(0);
        for event in events.iter().take(n) {
            let event = *event;
            let (token, ready) = (event.data, event.events);
            let conn = shard.conns.lock().get(&token).cloned();
            let Some(shared) = conn else { continue };
            if ready & sys::EPOLLOUT != 0 {
                handle_writable(&shared);
            }
            if ready & READ_EVENTS != 0 {
                handle_readable(&shared);
            }
            maybe_teardown(&shared);
        }
        sweep(&shard);
    }
}
