//! The synchronous-parallel-search monitor (paper §4.2, Figure 11).
//!
//! Crypto-currency mining introduces a feedback loop in the dataflow: the
//! next inputs to generate depend on the last valid result. The monitor
//! lazily produces mining attempts (block + nonce range) for the current
//! block, reads Pando's output stream, and moves on to the next block once a
//! valid nonce is found. Both the chain of blocks and the nonce space are
//! potentially infinite, which the lazy streaming model handles naturally.
//!
//! Attempts and outcomes travel through the typed
//! [`pando_workloads::app::CryptoCodec`] — native structs at both ends,
//! compact binary payloads on the wire.

use crate::master::Pando;
use pando_pull_stream::source::Source;
use pando_pull_stream::{Answer, Request};
use pando_workloads::app::CryptoCodec;
use pando_workloads::crypto::{self, MiningAttempt};
use parking_lot::Mutex;
use std::sync::Arc;

/// A block solved by the mining run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SolvedBlock {
    /// The block header that was mined.
    pub block: String,
    /// The nonce that satisfies the difficulty.
    pub nonce: u64,
    /// Number of nonce ranges that were dispatched for this block.
    pub attempts: u64,
}

/// Drives a Pando deployment through the mining feedback loop.
#[derive(Debug)]
pub struct MiningMonitor {
    /// Blocks to mine, in order.
    pub blocks: Vec<String>,
    /// Difficulty in leading zero bits.
    pub difficulty_bits: u32,
    /// Number of nonces per work unit.
    pub range_size: u64,
}

#[derive(Debug)]
struct MonitorState {
    current_block: usize,
    next_nonce: u64,
    attempts_for_block: u64,
    /// Set once every block has been solved: the input stream then ends.
    finished: bool,
}

impl MiningMonitor {
    /// Creates a monitor for the given chain of blocks.
    ///
    /// # Panics
    ///
    /// Panics if `range_size` is zero.
    pub fn new(blocks: Vec<String>, difficulty_bits: u32, range_size: u64) -> Self {
        assert!(range_size > 0, "range size must be at least 1");
        Self { blocks, difficulty_bits, range_size }
    }

    /// Mines every block using the given Pando deployment (whose volunteers
    /// must already be joining or joined) and returns the solved blocks in
    /// order.
    ///
    /// The monitor generates as many concurrent attempts as the workers ask
    /// for (laziness), so the search parallelises across all participating
    /// devices.
    pub fn run(&self, pando: &Pando) -> Vec<SolvedBlock> {
        let state = Arc::new(Mutex::new(MonitorState {
            current_block: 0,
            next_nonce: 0,
            attempts_for_block: 0,
            finished: self.blocks.is_empty(),
        }));

        // Lazy input source: each ask produces the next nonce range for the
        // block currently being mined.
        let input_state = state.clone();
        let blocks = self.blocks.clone();
        let difficulty = self.difficulty_bits;
        let range = self.range_size;
        let input = move |request: Request| -> Answer<MiningAttempt> {
            if request.is_termination() {
                return Answer::Done;
            }
            let mut state = input_state.lock();
            if state.finished || state.current_block >= blocks.len() {
                return Answer::Done;
            }
            let start = state.next_nonce;
            state.next_nonce += range;
            state.attempts_for_block += 1;
            Answer::Value(MiningAttempt {
                block: blocks[state.current_block].clone(),
                nonce_start: start,
                nonce_end: start + range,
                difficulty_bits: difficulty,
            })
        };

        let mut output = pando.run_typed(CryptoCodec, input);
        let mut solved = Vec::new();
        loop {
            match output.pull(Request::Ask) {
                Answer::Value(outcome) => {
                    let Some(nonce) = outcome.nonce else {
                        continue;
                    };
                    let mut state = state.lock();
                    if state.current_block >= self.blocks.len() {
                        continue;
                    }
                    let block = self.blocks[state.current_block].clone();
                    // A stale solution for an already-advanced block can
                    // arrive out of order; verify against the current block.
                    if !crypto::verify(&block, nonce, self.difficulty_bits) {
                        continue;
                    }
                    solved.push(SolvedBlock { block, nonce, attempts: state.attempts_for_block });
                    state.current_block += 1;
                    state.next_nonce = 0;
                    state.attempts_for_block = 0;
                    if state.current_block >= self.blocks.len() {
                        state.finished = true;
                    }
                }
                Answer::Done => break,
                Answer::Err(_) => break,
            }
        }
        solved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PandoConfig;
    use crate::worker::WorkerBuilder;
    use bytes::Bytes;
    use pando_workloads::app::AppKind;

    #[test]
    #[should_panic(expected = "range size")]
    fn zero_range_is_rejected() {
        let _ = MiningMonitor::new(vec!["b".into()], 4, 0);
    }

    #[test]
    fn mines_a_chain_of_blocks_with_two_volunteers() {
        let pando = Pando::new(PandoConfig::local_test());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let app = AppKind::CryptoMining.instantiate();
                WorkerBuilder::new()
                    .spawn(pando.open_volunteer_channel(), move |input: &Bytes| app.process(input))
            })
            .collect();

        let blocks = vec!["block-1".to_string(), "block-2".to_string()];
        let monitor = MiningMonitor::new(blocks.clone(), 12, 1_000);
        let solved = monitor.run(&pando);
        assert_eq!(solved.len(), 2);
        for (i, block) in blocks.iter().enumerate() {
            assert_eq!(&solved[i].block, block);
            assert!(crypto::verify(block, solved[i].nonce, 12));
            assert!(solved[i].attempts >= 1);
        }
        for worker in workers {
            let report = worker.join();
            assert!(report.processed > 0, "both devices contribute to the search");
        }
    }

    #[test]
    fn empty_chain_finishes_immediately() {
        let pando = Pando::new(PandoConfig::local_test());
        let worker = WorkerBuilder::new().spawn(pando.open_volunteer_channel(), |input: &Bytes| {
            Ok(bytes::Bytes::copy_from_slice(input))
        });
        let monitor = MiningMonitor::new(Vec::new(), 8, 100);
        assert!(monitor.run(&pando).is_empty());
        let _ = worker.join();
    }
}
