//! Volunteer lifecycle and deployment through the public server.
//!
//! A volunteer starts as a *candidate* (it opened the volunteer URL and is
//! negotiating a connection) and becomes a *processor* once its channel is
//! established and the worker code is running (paper Figure 7). This module
//! wires the [`crate::master::Pando`] master to a
//! [`pando_netsim::signaling::PublicServer`] so volunteers can
//! join by "opening a URL", exactly like the deployment story of the paper.

use crate::master::Pando;
use crate::protocol::Message;
use crate::worker::{WorkerBuilder, WorkerHandle, WorkerOptions};
use bytes::Bytes;
use pando_netsim::channel::ChannelKind;
use pando_netsim::signaling::{PublicServer, VolunteerUrl};
use pando_pull_stream::codec::TaskCodec;
use pando_pull_stream::StreamError;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The state of one volunteer as seen by the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum VolunteerState {
    /// The volunteer opened the URL and is establishing a connection.
    Candidate,
    /// The volunteer is connected and processing values.
    Processor,
    /// The volunteer left cleanly.
    Left,
    /// The volunteer crashed or its connection was lost.
    Crashed,
}

/// Information about a volunteer that joined through the public server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolunteerInfo {
    /// Identifier assigned by the public server.
    pub id: u64,
    /// How the connection was established.
    pub kind: ChannelKind,
}

/// Publishes the deployment on `server` and starts accepting volunteers.
///
/// Returns the URL to share (the line Pando prints on startup, paper
/// Figure 3) and a handle on the acceptor thread. The acceptor runs until
/// the deployment is unhosted from the server.
pub fn serve(
    pando: &Pando,
    server: &Arc<PublicServer<Message>>,
) -> (VolunteerUrl, JoinHandle<Vec<VolunteerInfo>>) {
    let direct = {
        let mut config = pando.config().transport.channel.clone();
        config.kind = ChannelKind::WebRtc;
        config
    };
    let relayed = pando.config().transport.channel.clone();
    let (url, incoming) = server.host(direct, relayed);
    let master = pando.clone();
    let acceptor = std::thread::Builder::new()
        .name("pando-acceptor".into())
        .spawn(move || {
            let mut joined = Vec::new();
            for volunteer in incoming.iter() {
                joined.push(VolunteerInfo { id: volunteer.volunteer_id, kind: volunteer.kind });
                master.add_volunteer_endpoint(
                    format!("volunteer-{}", volunteer.volunteer_id),
                    volunteer.endpoint,
                );
            }
            joined
        })
        .expect("spawn acceptor thread");
    (url, acceptor)
}

/// Joins the deployment at `url` as a volunteer device and starts processing
/// with the typed function `process` through `codec` — the bundle the
/// volunteer's browser would download.
///
/// # Errors
///
/// Returns an error if the deployment no longer accepts volunteers.
pub fn join_as_volunteer<C, F>(
    server: &PublicServer<Message>,
    url: &VolunteerUrl,
    codec: C,
    process: F,
    options: WorkerOptions,
) -> Result<(WorkerHandle, ChannelKind), StreamError>
where
    C: TaskCodec,
    F: Fn(&C::Task) -> Result<C::Result, StreamError> + Send + 'static,
{
    let (endpoint, kind) = server.join(url)?;
    Ok((WorkerBuilder::from_options(options).spawn_typed(endpoint, codec, process), kind))
}

/// Like [`join_as_volunteer`] but with a processing function over the raw
/// binary payloads, for bundles that do their own decoding.
///
/// # Errors
///
/// Returns an error if the deployment no longer accepts volunteers.
pub fn join_as_raw_volunteer<F>(
    server: &PublicServer<Message>,
    url: &VolunteerUrl,
    process: F,
    options: WorkerOptions,
) -> Result<(WorkerHandle, ChannelKind), StreamError>
where
    F: Fn(&Bytes) -> Result<Bytes, StreamError> + Send + 'static,
{
    let (endpoint, kind) = server.join(url)?;
    Ok((WorkerBuilder::from_options(options).spawn(endpoint, process), kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PandoConfig;
    use pando_pull_stream::codec::StringCodec;
    use pando_pull_stream::source::{count, SourceExt};

    #[allow(clippy::ptr_arg)] // must match Fn(&C::Task) with C::Task = String
    fn double(input: &String) -> Result<String, StreamError> {
        let n: u64 = input.parse().map_err(|_| StreamError::new("nan"))?;
        Ok((n * 2).to_string())
    }

    #[test]
    fn volunteers_join_through_the_public_server() {
        let server: Arc<PublicServer<Message>> = Arc::new(PublicServer::local());
        let pando = Pando::new(PandoConfig::local_test());
        let (url, acceptor) = serve(&pando, &server);

        // Two friends open the URL in their browser.
        let (worker_a, kind_a) =
            join_as_volunteer(&server, &url, StringCodec, double, WorkerOptions::default())
                .unwrap();
        let (worker_b, kind_b) =
            join_as_volunteer(&server, &url, StringCodec, double, WorkerOptions::default())
                .unwrap();
        assert_eq!(kind_a, ChannelKind::WebRtc, "open NAT gives direct connections");
        assert_eq!(kind_b, ChannelKind::WebRtc);

        let output = pando
            .run_typed(StringCodec, count(40).map_values(|v| v.to_string()))
            .collect_values()
            .unwrap();
        assert_eq!(output, (1..=40u64).map(|v| (v * 2).to_string()).collect::<Vec<_>>());

        server.unhost(&url);
        let joined = acceptor.join().unwrap();
        assert_eq!(joined.len(), 2);
        assert_eq!(pando.volunteers_connected(), 2);
        let _ = worker_a.join();
        let _ = worker_b.join();
    }

    #[test]
    fn raw_volunteers_process_binary_payloads() {
        let server: Arc<PublicServer<Message>> = Arc::new(PublicServer::local());
        let pando = Pando::new(PandoConfig::local_test());
        let (url, acceptor) = serve(&pando, &server);
        let (worker, _kind) = join_as_raw_volunteer(
            &server,
            &url,
            |input: &Bytes| Ok(Bytes::copy_from_slice(&[input.len() as u8])),
            WorkerOptions::default(),
        )
        .unwrap();
        let inputs =
            vec![Bytes::copy_from_slice(&[0, 0, 0]), Bytes::new(), Bytes::copy_from_slice(b"xy")];
        let output =
            pando.run(pando_pull_stream::source::from_iter(inputs)).collect_values().unwrap();
        assert_eq!(
            output,
            vec![
                Bytes::copy_from_slice(&[3]),
                Bytes::copy_from_slice(&[0]),
                Bytes::copy_from_slice(&[2]),
            ]
        );
        server.unhost(&url);
        acceptor.join().unwrap();
        let _ = worker.join();
    }

    #[test]
    fn joining_after_unhost_fails() {
        let server: Arc<PublicServer<Message>> = Arc::new(PublicServer::local());
        let pando = Pando::new(PandoConfig::local_test());
        let (url, acceptor) = serve(&pando, &server);
        server.unhost(&url);
        let err = join_as_volunteer(&server, &url, StringCodec, double, WorkerOptions::default())
            .unwrap_err();
        assert!(err.is_transport());
        acceptor.join().unwrap();
    }

    #[test]
    fn volunteer_states_cover_the_lifecycle() {
        // Simple data-type checks so the lifecycle enum stays usable.
        let states = [
            VolunteerState::Candidate,
            VolunteerState::Processor,
            VolunteerState::Left,
            VolunteerState::Crashed,
        ];
        assert_eq!(states.len(), 4);
        assert_ne!(VolunteerState::Candidate, VolunteerState::Processor);
    }
}
