//! End-to-end coverage of the real-socket TCP transport: handshake accept
//! and rejection, frame codec round-trips over a live socket pair, oversized
//! and truncated frames, crash detection feeding re-lend, and a loopback
//! 32-volunteer fleet driven by one master over localhost TCP.

use bytes::Bytes;
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::protocol::Message;
use pando_core::transport::tcp::{TcpAcceptor, TcpConfig, TcpTransport, TCP_PROTOCOL_VERSION};
use pando_core::transport::Transport;
use pando_core::worker::WorkerBuilder;
use pando_netsim::channel::RecvError;
use pando_netsim::codec::{Record, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use pando_netsim::fault::FaultPlan;
use pando_pull_stream::source::{count, SourceExt};
use pando_pull_stream::StreamError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Generous liveness windows: these tests assert explicit events, not
/// timeout-based suspicion, so the timeout must never fire spuriously on a
/// loaded CI machine.
fn lenient() -> TcpConfig {
    TcpConfig {
        heartbeat_interval: Duration::from_secs(2),
        failure_timeout: Duration::from_secs(30),
        ..TcpConfig::default()
    }
}

/// Accepts exactly one handshaken connection, polling the non-blocking
/// acceptor until it shows up.
fn accept_one(acceptor: &TcpAcceptor) -> (String, TcpTransport) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match acceptor.accept() {
            Ok(Some(pair)) => return pair,
            Ok(None) => {
                assert!(Instant::now() < deadline, "no connection within 10s");
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(err) => panic!("handshake failed: {err}"),
        }
    }
}

/// Like [`accept_one`] but expects the handshake to be rejected.
fn accept_expect_error(acceptor: &TcpAcceptor) -> pando_core::TransportError {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match acceptor.accept() {
            Ok(Some((name, _))) => panic!("handshake unexpectedly succeeded for {name}"),
            Ok(None) => {
                assert!(Instant::now() < deadline, "no connection within 10s");
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(err) => return err,
        }
    }
}

fn recv_one(transport: &dyn Transport) -> Message {
    transport.recv_timeout(Duration::from_secs(10)).expect("message arrives")
}

#[test]
fn handshake_exchanges_names_and_all_message_kinds_round_trip() {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", lenient()).unwrap();
    let addr = acceptor.local_addr();
    let client = std::thread::spawn(move || {
        TcpTransport::connect(addr, "tablet-7", lenient()).expect("connect")
    });
    let (name, master_side) = accept_one(&acceptor);
    let volunteer_side = client.join().unwrap();
    assert_eq!(name, "tablet-7", "the hello carries the volunteer's self-declared name");
    assert_eq!(master_side.peer_name(), "tablet-7");

    // Every protocol message survives a real socket round-trip, in order.
    let batch = vec![
        Record::new(4, Bytes::copy_from_slice(b"first")),
        Record::new(5, Bytes::copy_from_slice(b"")),
        Record::new(6, Bytes::from(vec![0xAB; 4096])),
    ];
    let outbound = vec![
        Message::Task { seq: 1, payload: Bytes::copy_from_slice(b"value-1") },
        Message::TaskBatch(batch.clone()),
        Message::Heartbeat,
        Message::Goodbye,
    ];
    for message in &outbound {
        master_side.send(message.clone()).expect("send succeeds");
    }
    for expected in &outbound {
        assert_eq!(&recv_one(&volunteer_side), expected, "FIFO delivery over the socket");
    }

    let inbound = vec![
        Message::TaskResult { seq: 1, payload: Bytes::copy_from_slice(b"result-1") },
        Message::ResultBatch(batch),
        Message::TaskError { seq: 9, message: Bytes::copy_from_slice(b"boom") },
    ];
    for message in &inbound {
        volunteer_side.send(message.clone()).expect("send succeeds");
    }
    for expected in &inbound {
        assert_eq!(&recv_one(&master_side), expected);
    }

    // Clean close: the marker is distinguishable from a crash on both ends.
    volunteer_side.close();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match master_side.try_recv() {
            Err(RecvError::Closed) => break,
            Err(RecvError::Empty) => {
                assert!(Instant::now() < deadline, "close marker never arrived");
                std::thread::sleep(Duration::from_millis(2));
            }
            other => panic!("expected a clean close, got {other:?}"),
        }
    }
}

#[test]
fn wrong_magic_and_wrong_version_are_rejected() {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", lenient()).unwrap();
    let addr = acceptor.local_addr();

    // Not a Pando client at all.
    let bogus = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let _ = stream.read(&mut [0u8; 16]); // wait for the rejection
    });
    let err = accept_expect_error(&acceptor);
    assert!(err.to_string().contains("magic"), "got: {err}");
    bogus.join().unwrap();

    // Right magic, incompatible version byte.
    let future = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut hello = Vec::new();
        hello.extend_from_slice(b"PNDO");
        hello.push(TCP_PROTOCOL_VERSION + 1);
        hello.extend_from_slice(&2u16.to_be_bytes());
        hello.extend_from_slice(b"v2");
        stream.write_all(&hello).unwrap();
        let _ = stream.read(&mut [0u8; 16]);
    });
    let err = accept_expect_error(&acceptor);
    assert!(err.to_string().contains("version"), "got: {err}");
    future.join().unwrap();
}

/// Performs a valid client-side handshake (v2, plain mode) on a raw socket
/// so the test can then inject arbitrary bytes at the frame layer.
fn raw_handshake(addr: std::net::SocketAddr, name: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut hello = Vec::new();
    hello.extend_from_slice(b"PNDO");
    hello.push(TCP_PROTOCOL_VERSION);
    hello.push(0); // mode: plain (sessionless)
    hello.extend_from_slice(&(name.len() as u16).to_be_bytes());
    hello.extend_from_slice(name.as_bytes());
    stream.write_all(&hello).unwrap();
    // Reply: magic, version, status, token, received-count — 22 bytes.
    let mut reply = [0u8; 22];
    stream.read_exact(&mut reply).unwrap();
    assert_eq!(&reply[..4], b"PNDO");
    assert_eq!(reply[5], 0, "a plain hello is never a resume");
    stream
}

#[test]
fn oversized_incoming_frame_fails_the_link() {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", lenient()).unwrap();
    let addr = acceptor.local_addr();
    let client = std::thread::spawn(move || {
        let mut stream = raw_handshake(addr, "hostile");
        // A header announcing a frame over the wire limit; the link must be
        // poisoned before any payload is read.
        let mut header = vec![1u8];
        header.extend_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_be_bytes());
        stream.write_all(&header).unwrap();
        let _ = stream.read(&mut [0u8; 16]); // wait for the shutdown
    });
    let (_, master_side) = accept_one(&acceptor);
    let err = master_side.recv_timeout(Duration::from_secs(10)).unwrap_err();
    assert_eq!(err, RecvError::PeerFailed, "an oversized frame is a protocol failure");
    assert!(!master_side.is_peer_alive());
    client.join().unwrap();
}

#[test]
fn mid_frame_disconnect_is_detected_as_a_crash() {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", lenient()).unwrap();
    let addr = acceptor.local_addr();
    let client = std::thread::spawn(move || {
        let mut stream = raw_handshake(addr, "flaky");
        // A valid header promising 100 payload bytes, then only 10 of them,
        // then the socket dies: EOF mid-frame, no close marker.
        let mut partial = vec![1u8];
        partial.extend_from_slice(&100u32.to_be_bytes());
        partial.extend_from_slice(&[0u8; 10]);
        stream.write_all(&partial).unwrap();
        drop(stream);
    });
    let (_, master_side) = accept_one(&acceptor);
    client.join().unwrap();
    let err = master_side.recv_timeout(Duration::from_secs(10)).unwrap_err();
    assert_eq!(err, RecvError::PeerFailed, "mid-frame EOF must read as a crash, never a close");
    assert_eq!(master_side.try_recv().unwrap_err(), RecvError::PeerFailed);
    assert!(link_is_terminal(&master_side));
}

/// A failed link reports no future readiness deadline.
fn link_is_terminal(transport: &dyn Transport) -> bool {
    transport.next_ready_at().is_none()
}

#[test]
fn tcp_volunteer_crash_triggers_re_lend() {
    let pando = Pando::new(PandoConfig::local_test().with_batch_size(4));
    // Crash detection in this test rides the EOF fast path, so the lenient
    // windows are safe and keep loaded CI machines from false suspicions.
    let tcp = lenient();
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tcp.clone()).unwrap();
    let addr = acceptor.local_addr();
    let server = acceptor.serve(&pando);

    let echo = |payload: &Bytes| -> Result<Bytes, StreamError> { Ok(payload.clone()) };
    let crashing = WorkerBuilder::new()
        .name("doomed")
        .fault(FaultPlan::AfterTasks(3))
        .heartbeats(true)
        .spawn(TcpTransport::connect(addr, "doomed", tcp.clone()).unwrap(), echo);
    let reliable = WorkerBuilder::new()
        .name("steady")
        .heartbeats(true)
        .spawn(TcpTransport::connect(addr, "steady", tcp).unwrap(), echo);

    let output = pando
        .run(count(60).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .unwrap();
    assert_eq!(output.len(), 60);
    for (i, payload) in output.iter().enumerate() {
        assert_eq!(payload.as_ref(), (i + 1).to_string().as_bytes(), "order survives the crash");
    }
    assert!(crashing.join().crashed);
    assert!(!reliable.join().crashed);
    server.join();
    pando.join_volunteers();
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.results_emitted, 60);
    assert_eq!(stats.substreams_crashed, 1, "the TCP crash reaches the lender as a crash");
    assert!(stats.relends >= 1, "values held by the crashed volunteer are re-lent");
}

#[test]
fn loopback_fleet_of_32_tcp_volunteers_completes_in_order() {
    let tasks = 480u64;
    let pando = Pando::new(PandoConfig::local_test().with_batch_size(4).with_reactor_threads(4));
    let tcp = lenient();
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tcp.clone()).unwrap();
    let addr = acceptor.local_addr();
    let server = acceptor.serve(&pando);

    // 32 real socket connections served by an 8-thread worker pool: the
    // volunteer-side mirror of a real multi-process fleet, in one test.
    let transports: Vec<TcpTransport> = (0..32)
        .map(|i| TcpTransport::connect(addr, &format!("fleet-{i}"), tcp.clone()).unwrap())
        .collect();
    let pool = WorkerBuilder::new().heartbeats(true).pool_threads(8).spawn_pool(
        transports,
        |payload: &Bytes| {
            let v: u64 = std::str::from_utf8(payload)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| StreamError::new("not a number"))?;
            Ok(Bytes::from((v * 3 + 1).to_string().into_bytes()))
        },
    );

    let output = pando
        .run(count(tasks).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .unwrap();
    assert_eq!(output.len() as u64, tasks);
    for (i, payload) in output.iter().enumerate() {
        let expected = ((i as u64 + 1) * 3 + 1).to_string();
        assert_eq!(payload.as_ref(), expected.as_bytes(), "result {i} complete and in order");
    }

    let reports = pool.join();
    server.join();
    pando.join_volunteers();
    assert_eq!(
        reports.iter().map(|r| r.processed).sum::<u64>(),
        tasks,
        "every task processed exactly once across the TCP fleet"
    );
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.results_emitted, tasks);
    assert_eq!(stats.substreams_crashed, 0, "a healthy fleet ends cleanly");
}

#[test]
fn slow_reader_bounds_the_write_queue_and_send_resumes_after_drain() {
    use pando_netsim::channel::SendError;

    // A tight byte bound so the test fills it quickly once the kernel socket
    // buffers are saturated by a peer that stops reading.
    let bound = 64 * 1024usize;
    let config = TcpConfig { write_buffer_max: bound, ..lenient() };
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", config.clone()).unwrap();
    let addr = acceptor.local_addr();
    let stalled = std::thread::Builder::new()
        .name("stalled-reader".into())
        .spawn(move || raw_handshake(addr, "molasses"))
        .unwrap();
    let (_, master_side) = accept_one(&acceptor);
    let stream = stalled.join().unwrap();

    // Push 32 KiB frames at a peer that never reads. The kernel buffers
    // absorb the first burst; after that the transport's own queue fills to
    // its byte bound and `send` must push back instead of buffering forever.
    let payload = Bytes::from(vec![0x5A_u8; 32 * 1024]);
    let frame = Message::Task { seq: 1, payload: payload.clone() };
    let mut sent = 0u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    let blocked = loop {
        match master_side.send(frame.clone()) {
            Ok(()) => {
                sent += 1;
                let queued = master_side.stats().queued_bytes;
                assert!(
                    queued <= bound,
                    "write queue exceeded its bound: {queued} > {bound} after {sent} frames"
                );
            }
            Err(SendError::WouldBlock) => break true,
            Err(other) => panic!("expected backpressure, got {other:?}"),
        }
        if Instant::now() > deadline {
            break false;
        }
    };
    assert!(blocked, "a stalled reader must surface WouldBlock, not unbounded buffering");
    assert!(sent > 0, "some frames must be accepted before the queue fills");
    assert!(master_side.is_peer_alive(), "backpressure is transient: the peer is slow, not dead");

    // The reader wakes up and drains the socket: the queue empties and the
    // same link accepts new frames again — WouldBlock was not terminal.
    let drainer = std::thread::spawn(move || {
        let mut stream = stream;
        let mut sink = [0u8; 16 * 1024];
        stream.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        let idle_since = Instant::now() + Duration::from_secs(30);
        loop {
            match stream.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) if Instant::now() > idle_since => break,
                Err(_) => {}
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match master_side.send(frame.clone()) {
            Ok(()) => break,
            Err(SendError::WouldBlock) => {
                assert!(Instant::now() < deadline, "send never resumed after the reader drained");
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(other) => panic!("link died while draining: {other:?}"),
        }
    }
    master_side.crash(); // tear the link down so the drainer sees EOF
    drainer.join().unwrap();
}

#[test]
fn stalled_volunteer_is_crashed_by_timeout_and_its_tasks_re_lent() {
    // Short liveness windows: the stalled peer sends nothing after the
    // handshake, so the failure timeout is the only thing that can end it.
    let tcp = TcpConfig {
        heartbeat_interval: Duration::from_millis(100),
        failure_timeout: Duration::from_secs(1),
        ..TcpConfig::default()
    };
    let pando = Pando::new(PandoConfig::local_test().with_batch_size(4));
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tcp.clone()).unwrap();
    let addr = acceptor.local_addr();
    let server = acceptor.serve(&pando);

    // One healthy worker and one volunteer that handshakes, then goes silent
    // and never reads: tasks lent to it can only complete through re-lend.
    let steady = WorkerBuilder::new().name("steady").heartbeats(true).spawn(
        TcpTransport::connect(addr, "steady", tcp).unwrap(),
        |payload: &Bytes| -> Result<Bytes, StreamError> { Ok(payload.clone()) },
    );
    let stalled = raw_handshake(addr, "wedged");
    assert!(server.wait_for_volunteers(2, Duration::from_secs(10)), "both volunteers join");

    let output = pando
        .run(count(200).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .unwrap();
    assert_eq!(output.len(), 200);
    for (i, payload) in output.iter().enumerate() {
        assert_eq!(payload.as_ref(), (i + 1).to_string().as_bytes(), "order survives the stall");
    }
    drop(stalled);
    assert!(!steady.join().crashed);
    server.stop();
    server.join();
    pando.join_volunteers();
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.results_emitted, 200);
    assert_eq!(stats.substreams_crashed, 1, "silence past the failure timeout reads as a crash");
    assert!(stats.relends >= 1, "values held by the wedged volunteer are re-lent");
}

#[test]
fn idle_link_with_keepalive_survives_past_three_heartbeat_intervals() {
    // Liveness split: sub-second application heartbeats, a failure timeout
    // that the test's idle window must never reach, and kernel keepalive on
    // the socket underneath (satellite check: actually enabled, not just
    // configured).
    let tcp = TcpConfig {
        heartbeat_interval: Duration::from_millis(100),
        failure_timeout: Duration::from_secs(30),
        ..TcpConfig::default()
    };
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tcp.clone()).unwrap();
    let addr = acceptor.local_addr();
    let tcp_client = tcp.clone();
    let client = std::thread::spawn(move || {
        TcpTransport::connect(addr, "dormant", tcp_client).expect("connect")
    });
    let (_, master_side) = accept_one(&acceptor);
    let volunteer_side = client.join().unwrap();
    if cfg!(target_os = "linux") {
        assert_eq!(master_side.keepalive_enabled(), Some(true), "keepalive set on accept side");
        assert_eq!(volunteer_side.keepalive_enabled(), Some(true), "keepalive set on connect side");
    }

    // No worker, no heartbeats, no traffic: an idle-but-open link past three
    // heartbeat intervals must not be suspected — only the failure timeout
    // (or the kernel's keepalive probes, on real dead links) may end it.
    std::thread::sleep(tcp.heartbeat_interval * 4);
    assert!(master_side.is_peer_alive(), "idle is not dead");
    assert!(volunteer_side.is_peer_alive(), "idle is not dead");
    assert_eq!(master_side.try_recv().unwrap_err(), RecvError::Empty);
    assert_eq!(volunteer_side.try_recv().unwrap_err(), RecvError::Empty);

    // And the link still works after the idle spell.
    volunteer_side.send(Message::Heartbeat).unwrap();
    assert_eq!(recv_one(&master_side), Message::Heartbeat);
}

#[test]
fn frame_header_constant_matches_the_wire() {
    // The TCP reader parses headers by hand; pin the layout it assumes.
    let message = Message::Task { seq: 42, payload: Bytes::copy_from_slice(b"xyz") };
    let frame = message.encode().unwrap();
    let len = u32::from_be_bytes([frame[1], frame[2], frame[3], frame[4]]) as usize;
    assert_eq!(frame.len(), FRAME_HEADER_LEN + len);
    assert_ne!(frame[0], 0, "protocol tags must never collide with the close marker");
}
