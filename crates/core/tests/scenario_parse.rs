//! Parser properties of the scenario DSL ([`pando_core::scenario`]): any
//! valid [`Scenario`] survives a `render → parse` round trip structurally
//! intact (so checked-in files, programmatic construction and golden
//! tooling all agree on one representation), rendering is idempotent, and
//! malformed documents come back as *typed* [`ScenarioError`]s naming the
//! offending table, key or event — never a panic, never a silently-default
//! value.

use pando_core::scenario::{
    Expectations, GroupSpec, LinkOverrides, PartitionSpec, Scenario, ScenarioError,
    DEFAULT_DURATION_US,
};
use proptest::prelude::*;

/// Deterministically builds a *valid* scenario from integer draws: group 0
/// never crashes or leaves (there is always a survivor), every event lands
/// inside the duration and after its target's join.
fn build(seed: u64, tasks: u64, shape: u64, faults: u64) -> Scenario {
    let nets = ["lan", "vpn", "wan", "instant"];
    let anchor_count = 1 + (shape % 3) as usize;
    let mut groups = vec![GroupSpec {
        name: "anchor".into(),
        count: anchor_count,
        net: nets[(shape / 3 % 4) as usize].into(),
        device: None,
        app: None,
        link: LinkOverrides {
            service_us: Some(800 + shape % 2_000),
            loss: (shape & 1 == 1).then_some(0.05),
            ..LinkOverrides::default()
        },
        joins_at_us: 0,
        join_stagger_us: shape % 700,
        leaves_at_us: None,
    }];
    let wave_count = (shape / 16 % 4) as usize;
    if wave_count > 0 {
        groups.push(GroupSpec {
            name: "wave".into(),
            count: wave_count,
            net: nets[(shape / 64 % 4) as usize].into(),
            device: (shape & 2 == 2).then(|| "iPhone SE".into()),
            app: (shape & 2 == 2).then(|| "raytrace".into()),
            link: LinkOverrides {
                latency_us: Some(1_000 + shape % 9_000),
                jitter_us: Some(shape % 2_000),
                retransmit_us: (shape & 4 == 4).then_some(10_000),
                ..LinkOverrides::default()
            },
            joins_at_us: 2_000,
            join_stagger_us: 500,
            leaves_at_us: (faults & 1 == 1).then_some(50_000_000),
        });
    }
    let mut crashes = Vec::new();
    let mut flaps = Vec::new();
    let mut partitions = Vec::new();
    if wave_count > 0 && faults & 2 == 2 {
        // Crash the first wave volunteer well after its join.
        crashes.push((anchor_count, 10_000 + faults % 10_000));
    }
    if faults & 4 == 4 {
        flaps.push((0, 3_000 + faults % 5_000, 1_000 + faults % 20_000));
    }
    if wave_count > 0 && faults & 8 == 8 {
        partitions.push(PartitionSpec {
            group: "wave".into(),
            at_us: 10_000,
            heal_us: 20_000 + faults % 100_000,
        });
    }
    Scenario {
        name: "prop_scenario".into(),
        seed,
        tasks,
        duration_us: DEFAULT_DURATION_US,
        interactive: shape & 8 == 8,
        defaults: LinkOverrides {
            heartbeat_us: (shape & 16 == 16).then_some(50_000),
            failure_timeout_us: (shape & 16 == 16).then_some(400_000),
            bandwidth_bps: (shape & 32 == 32).then_some(1_000_000),
            ..LinkOverrides::default()
        },
        groups,
        crashes,
        flaps,
        partitions,
        expect: Expectations {
            crashed: (faults & 16 == 16).then_some(faults % 3),
            min_retransmits: (faults & 32 == 32).then_some(1),
            ..Expectations::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(render(s)) == s` for any valid scenario — the rendered text
    /// is a faithful, re-loadable representation of the structure.
    #[test]
    fn render_parse_round_trips(
        seed in 0u64..1_000_000,
        tasks in 1u64..500,
        shape in 0u64..1_000_000,
        faults in 0u64..1_000_000,
    ) {
        let scenario = build(seed, tasks, shape, faults);
        let text = scenario.render();
        let parsed = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("{e}\n--- rendered ---\n{text}"));
        prop_assert_eq!(&parsed, &scenario, "rendered:\n{}", text);
        // Rendering is idempotent: a second round trip emits identical text.
        prop_assert_eq!(parsed.render(), text);
    }

    /// Compilation to fleet parameters preserves the headline shape: one
    /// volunteer spec per declared seat, flaps forwarded verbatim, and the
    /// script name matching the scenario.
    #[test]
    fn compiled_params_match_the_declared_shape(
        seed in 0u64..1_000_000,
        tasks in 1u64..200,
        shape in 0u64..1_000_000,
        faults in 0u64..1_000_000,
    ) {
        let scenario = build(seed, tasks, shape, faults);
        let params = scenario.to_fleet_params().unwrap();
        prop_assert_eq!(params.volunteers, scenario.volunteers());
        prop_assert_eq!(params.tasks, scenario.tasks);
        prop_assert_eq!(&params.flaps, &scenario.flaps);
        let script = params.script.as_ref().unwrap();
        prop_assert_eq!(&script.name, &scenario.name);
        prop_assert_eq!(script.interactive_input, scenario.interactive);
        prop_assert_eq!(script.partitions.len(), scenario.partitions.len());
    }
}

// --- typed errors for malformed documents -------------------------------

const VALID: &str = r#"
name = "base"
seed = 3
tasks = 16
duration_us = 1000000

[[group]]
name = "only"
count = 2
"#;

fn err_of(text: &str) -> ScenarioError {
    Scenario::parse(text).expect_err("malformed input must be rejected")
}

#[test]
fn syntax_errors_carry_their_line() {
    match err_of("name = \"base\"\nseed = ???") {
        ScenarioError::Toml(e) => assert_eq!(e.line, 2, "{e}"),
        other => panic!("expected a Toml error, got {other:?}"),
    }
}

#[test]
fn unknown_tables_and_keys_are_named() {
    assert_eq!(
        err_of(&format!("{VALID}\n[grupo]\nx = 1")),
        ScenarioError::UnknownKey { table: "scenario".into(), key: "grupo".into() }
    );
    assert_eq!(
        err_of(&VALID.replace("seed = 3", "seed = 3\nlose = 0.5")),
        ScenarioError::UnknownKey { table: "scenario".into(), key: "lose".into() }
    );
    assert_eq!(
        err_of(&VALID.replace("count = 2", "count = 2\nloses = 0.5")),
        ScenarioError::UnknownKey { table: "group".into(), key: "loses".into() }
    );
}

#[test]
fn out_of_range_values_name_the_key() {
    for (text, key) in [
        (VALID.replace("count = 2", "count = 2\nloss = 1.5"), "group.loss"),
        (VALID.replace("count = 2", "count = 2\nloss = -0.25"), "group.loss"),
        (VALID.replace("count = 2", "count = -2"), "group.count"),
        (VALID.replace("tasks = 16", "tasks = 0"), "scenario.tasks"),
        (VALID.replace("tasks = 16", "tasks = \"many\""), "scenario.tasks"),
        (VALID.replace("seed = 3", "seed = 3\ninput = \"psychic\""), "scenario.input"),
    ] {
        match err_of(&text) {
            ScenarioError::InvalidValue { key: got, .. } => assert_eq!(got, key),
            other => panic!("expected InvalidValue for {key}, got {other:?}"),
        }
    }
}

#[test]
fn impossible_schedules_are_typed() {
    assert_eq!(
        err_of(&format!("{VALID}\n[[crash]]\nvolunteer = 5\nat_us = 10")),
        ScenarioError::UnknownVolunteer(5)
    );
    assert_eq!(
        err_of(&format!("{VALID}\n[[partition]]\ngroup = \"ghost\"\nat_us = 1\nheal_us = 2")),
        ScenarioError::UnknownGroup("ghost".into())
    );
    assert!(matches!(
        err_of(&format!("{VALID}\n[[flap]]\nvolunteer = 0\nat_us = 2000000\ndown_us = 5")),
        ScenarioError::EventPastDuration { .. }
    ));
    assert!(matches!(
        err_of(&format!("{VALID}\n[[partition]]\ngroup = \"only\"\nat_us = 500\nheal_us = 400")),
        ScenarioError::EventBeforeJoin { .. }
    ));
    assert!(matches!(
        err_of(&format!(
            "{VALID}\n[[partition]]\ngroup = \"only\"\nat_us = 100\nheal_us = 300\n\
             [[partition]]\ngroup = \"only\"\nat_us = 200\nheal_us = 400"
        )),
        ScenarioError::OverlappingPartitions { .. }
    ));
    assert_eq!(
        err_of(&VALID.replace("count = 2", "count = 2\nleaves_at_us = 900000")),
        ScenarioError::NoSurvivor
    );
}

#[test]
fn missing_files_and_stem_mismatches_are_typed() {
    assert!(matches!(
        Scenario::load("/nonexistent/nowhere.toml").unwrap_err(),
        ScenarioError::Io { .. }
    ));
}
