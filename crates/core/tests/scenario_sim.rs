//! End-to-end determinism of scripted scenarios: for *any* generated
//! topology/churn/fault script, compiling it through
//! [`pando_core::scenario`] and executing it twice on the virtual clock
//! yields byte-identical canonical traces, and the merged output is always
//! the complete input in input order — churn waves, crashes, flaps, lossy
//! links and partitions included. This is the property behind the committed
//! golden traces in `scenarios/golden/`: if two in-process runs ever
//! diverged, a golden file could never be stable across machines.

use pando_core::scenario::{GroupSpec, LinkOverrides, PartitionSpec, Scenario};
use pando_core::sim::simulate_fleet;
use proptest::prelude::*;

/// Builds a valid random scenario from integer draws. Group 0 ("anchor")
/// never crashes or leaves, so the stream always has a survivor; all events
/// land inside the horizon and after their target's join.
fn build(seed: u64, tasks: u64, shape: u64, faults: u64) -> Scenario {
    let nets = ["lan", "vpn", "wan"];
    let anchor_count = 1 + (shape % 3) as usize;
    let mut groups = vec![GroupSpec {
        name: "anchor".into(),
        count: anchor_count,
        net: nets[(shape / 3 % 3) as usize].into(),
        device: None,
        app: None,
        link: LinkOverrides {
            service_us: Some(500 + shape % 2_500),
            loss: (shape & 1 == 1).then_some(0.02 + (shape % 5) as f64 / 50.0),
            ..LinkOverrides::default()
        },
        joins_at_us: 0,
        join_stagger_us: 0,
        leaves_at_us: None,
    }];
    let wave_count = (shape / 16 % 3) as usize;
    if wave_count > 0 {
        groups.push(GroupSpec {
            name: "wave".into(),
            count: wave_count,
            net: nets[(shape / 64 % 3) as usize].into(),
            device: None,
            app: None,
            link: LinkOverrides {
                service_us: Some(800 + shape % 1_500),
                ..LinkOverrides::default()
            },
            joins_at_us: 1_000 + shape % 4_000,
            join_stagger_us: shape % 1_000,
            leaves_at_us: (faults & 1 == 1).then_some(40_000_000),
        });
    }
    let mut crashes = Vec::new();
    let mut flaps = Vec::new();
    let mut partitions = Vec::new();
    if wave_count > 0 && faults & 2 == 2 {
        crashes.push((anchor_count, 20_000 + faults % 20_000));
    }
    if faults & 4 == 4 {
        flaps.push((0, 2_000 + faults % 6_000, 500 + faults % 30_000));
    }
    if wave_count > 0 && faults & 8 == 8 {
        partitions.push(PartitionSpec {
            group: "wave".into(),
            at_us: 12_000,
            heal_us: 20_000 + faults % 80_000,
        });
    }
    Scenario {
        name: "prop_run".into(),
        seed,
        tasks,
        duration_us: 600_000_000,
        interactive: shape & 8 == 8,
        defaults: LinkOverrides::default(),
        groups,
        crashes,
        flaps,
        partitions,
        expect: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same scenario ⇒ byte-identical canonical traces, twice over.
    #[test]
    fn scripted_runs_are_byte_identical(
        seed in 0u64..1_000_000,
        tasks in 1u64..64,
        shape in 0u64..1_000_000,
        faults in 0u64..1_000_000,
    ) {
        let scenario = build(seed, tasks, shape, faults);
        let params = scenario.to_fleet_params().unwrap();
        let a = simulate_fleet(&params);
        let b = simulate_fleet(&params);
        prop_assert_eq!(a.canonical_trace(), b.canonical_trace());
        prop_assert_eq!(a.output_digest, b.output_digest);
        prop_assert_eq!(&a.claim_log, &b.claim_log);
        prop_assert_eq!(a.retransmits, b.retransmits);
    }

    /// Whatever the script throws at the fleet — staggered joins, clean
    /// leaves, crash-stops, flaps, partitions, lossy links — every input
    /// value is emitted exactly once, in global input order.
    #[test]
    fn scripted_output_is_complete_and_ordered(
        seed in 0u64..1_000_000,
        tasks in 1u64..64,
        shape in 0u64..1_000_000,
        faults in 0u64..1_000_000,
    ) {
        let scenario = build(seed, tasks, shape, faults);
        let report = simulate_fleet(&scenario.to_fleet_params().unwrap());
        let expected: Vec<u64> = (0..tasks).collect();
        prop_assert_eq!(&report.output_order, &expected);
        // Crash accounting matches the script: only scripted crash-stops
        // count, clean leaves and flaps never do.
        prop_assert_eq!(report.crashed, scenario.crashes.len() as u64);
    }
}

/// The checked-in scenario files themselves parse, compile, and satisfy
/// their own [expect] tables — the unit-test twin of `make scenarios`
/// (which additionally diffs the golden traces).
#[test]
fn checked_in_scenarios_run_green() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/ directory exists at the workspace root")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 8, "the suite ships at least 8 scenarios, found {}", paths.len());
    for path in paths {
        let scenario = Scenario::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = simulate_fleet(&scenario.to_fleet_params().unwrap());
        let expected: Vec<u64> = (0..scenario.tasks).collect();
        assert_eq!(report.output_order, expected, "{}: incomplete output", path.display());
        scenario.expect.check(&report).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}
