//! End-to-end tests of sharded dispatch on the master/reactor path:
//! multi-shard fleets keep global output order, `lender_shards = 1`
//! reproduces the single-lender protocol exactly, crash rescue crosses
//! shards through driver hopping, and the per-shard meters account for
//! every borrow and result.

use bytes::Bytes;
use pando_core::config::{PandoConfig, VolunteerBackend};
use pando_core::master::Pando;
use pando_core::worker::WorkerBuilder;
use pando_netsim::fault::FaultPlan;
use pando_pull_stream::codec::StringCodec;
use pando_pull_stream::source::{count, Source, SourceExt};
use pando_pull_stream::StreamError;

#[allow(clippy::ptr_arg)] // must match Fn(&C::Task) with C::Task = String
fn echo(input: &String) -> Result<String, StreamError> {
    Ok(input.clone())
}

fn numbers(n: u64) -> impl Source<String> + 'static {
    count(n).map_values(|v| v.to_string())
}

#[test]
fn four_shards_keep_global_order_across_a_fleet() {
    let config =
        PandoConfig::local_test().with_reactor_threads(4).with_lender_shards(4).with_batch_size(4);
    let pando = Pando::new(config);
    let endpoints: Vec<_> = (0..16).map(|_| pando.open_volunteer_channel()).collect();
    let pool = WorkerBuilder::new()
        .pool_threads(4)
        .spawn_pool(endpoints, |payload: &Bytes| Ok(payload.clone()));
    let output = pando
        .run(count(500).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .unwrap();
    assert_eq!(output.len(), 500);
    for (i, payload) in output.iter().enumerate() {
        assert_eq!(
            payload.as_ref(),
            (i + 1).to_string().as_bytes(),
            "result {i} must arrive in global input order"
        );
    }
    let reports = pool.join();
    pando.join_volunteers();
    assert_eq!(reports.iter().map(|r| r.processed).sum::<u64>(), 500);
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.results_emitted, 500);
    // Work actually spread over more than one shard's lock.
    pando.observe_shards();
    let shard_rows = pando.meter().report().shards;
    assert!(shard_rows.len() > 1, "multiple shards saw dispatch traffic");
    assert_eq!(shard_rows.iter().map(|s| s.borrows).sum::<u64>(), 500);
    assert_eq!(shard_rows.iter().map(|s| s.results).sum::<u64>(), 500);
    assert!(shard_rows.iter().all(|s| s.depth == 0 && s.in_flight == 0), "drained at the end");
}

#[test]
fn single_shard_reproduces_the_single_lender_protocol() {
    // With one shard and tasks_per_frame = 1, the wire pattern of the
    // pre-sharding master must reproduce exactly: one task frame out and
    // one result frame back per value.
    let config =
        PandoConfig::local_test().with_lender_shards(1).with_batch_size(8).with_tasks_per_frame(1);
    let pando = Pando::new(config);
    let worker =
        WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, echo);
    let output = pando.run_typed(StringCodec, numbers(40)).collect_values().unwrap();
    assert_eq!(output, (1..=40u64).map(|v| v.to_string()).collect::<Vec<_>>());
    worker.join();
    pando.join_volunteers();
    let report = pando.meter().report();
    assert_eq!(report.rows[0].wire_frames, 80, "identical frame count to the single lender");
    assert_eq!(pando.shard_stats().unwrap().len(), 1);
    let stats = pando.lender_stats().unwrap();
    assert_eq!((stats.values_read, stats.results_emitted), (40, 40));
}

#[test]
fn crash_on_one_shard_is_rescued_by_volunteers_of_another() {
    // Two shards, two volunteers — one per shard. The crasher dies holding
    // borrowed values; its shard is left with no devices. The survivor must
    // finish its own shard, hop over, and complete the orphaned work.
    let config = PandoConfig::local_test().with_reactor_threads(2).with_lender_shards(2);
    let pando = Pando::new(config);
    let crasher = WorkerBuilder::new().fault(FaultPlan::AfterTasks(3)).spawn_typed(
        pando.open_volunteer_channel(),
        StringCodec,
        echo,
    );
    let survivor =
        WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, echo);
    let output = pando.run_typed(StringCodec, numbers(80)).collect_values().unwrap();
    assert_eq!(output, (1..=80u64).map(|v| v.to_string()).collect::<Vec<_>>());
    assert!(crasher.join().crashed);
    assert!(!survivor.join().crashed);
    pando.join_volunteers();
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.results_emitted, 80);
    assert_eq!(stats.substreams_crashed, 1);
    assert!(stats.relends >= 1, "the crasher's values are re-lent");
    let reactor = pando.reactor_stats().unwrap();
    assert_eq!(reactor.shards, 2);
}

#[test]
fn volunteers_spread_across_shards_before_hashing() {
    let config = PandoConfig::local_test().with_reactor_threads(4).with_lender_shards(4);
    let pando = Pando::new(config);
    let endpoints: Vec<_> = (0..8).map(|_| pando.open_volunteer_channel()).collect();
    let pool = WorkerBuilder::new()
        .pool_threads(2)
        .spawn_pool(endpoints, |payload: &Bytes| Ok(payload.clone()));
    let output = pando
        .run(count(200).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .unwrap();
    assert_eq!(output.len(), 200);
    pool.join();
    pando.join_volunteers();
    // Every shard got at least one sub-stream: the first four volunteers are
    // placed on empty shards before the id hash takes over.
    let shard_stats = pando.shard_stats().unwrap();
    assert_eq!(shard_stats.len(), 4);
    for (shard, stats) in shard_stats.iter().enumerate() {
        assert!(stats.substreams_created >= 1, "shard {shard} never received a volunteer");
    }
}

#[test]
fn adaptive_batching_completes_and_coalesces() {
    // Smoke the adaptive policy end to end: a wide window, one volunteer,
    // plenty of immediately available tasks. Frames must still coalesce
    // (fewer frames than the unbatched two-per-task protocol) and the
    // output must stay ordered.
    let config = PandoConfig::local_test()
        .with_batch_size(16)
        .with_adaptive_batching(true)
        .with_lender_shards(1);
    let pando = Pando::new(config);
    let worker =
        WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, echo);
    let output = pando.run_typed(StringCodec, numbers(300)).collect_values().unwrap();
    assert_eq!(output.len(), 300);
    worker.join();
    pando.join_volunteers();
    let report = pando.meter().report();
    let row = &report.rows[0];
    assert_eq!(row.tasks, 300);
    assert!(
        row.wire_frames < 2 * row.tasks,
        "adaptive batching still coalesces ({} frames for {} tasks)",
        row.wire_frames,
        row.tasks
    );
}

#[test]
fn threads_backend_runs_a_single_shard_with_shard_metrics() {
    let config =
        PandoConfig::local_test().with_backend(VolunteerBackend::Threads).with_lender_shards(4); // ignored: the threads backend never shards
    let pando = Pando::new(config);
    let worker =
        WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, echo);
    let output = pando.run_typed(StringCodec, numbers(25)).collect_values().unwrap();
    assert_eq!(output.len(), 25);
    worker.join();
    pando.join_volunteers();
    assert_eq!(pando.shard_stats().unwrap().len(), 1);
    pando.observe_shards();
    let shard_rows = pando.meter().report().shards;
    assert_eq!(shard_rows.len(), 1);
    assert_eq!(shard_rows[0].borrows, 25);
    assert_eq!(shard_rows[0].results, 25);
}
