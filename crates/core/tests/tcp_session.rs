//! End-to-end coverage of resumable TCP sessions: a volunteer that drops
//! its socket mid-run and redials within the grace window rejoins its old
//! session (replayed frames, no crash re-lend, no duplicate or lost
//! results), while one that stays away past the grace window is reclassified
//! as crashed and its values re-lent — the existing crash path, unchanged.

use bytes::Bytes;
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::transport::tcp::session::{ReconnectPolicy, ReconnectingTcpTransport};
use pando_core::transport::tcp::{TcpAcceptor, TcpConfig};
use pando_core::transport::Transport;
use pando_core::worker::WorkerBuilder;
use pando_netsim::fault::FaultPlan;
use pando_pull_stream::source::{count, SourceExt};
use pando_pull_stream::StreamError;
use std::time::Duration;

/// A processing function slow enough that a scripted mid-run flap actually
/// lands mid-run.
fn slow_echo(payload: &Bytes) -> Result<Bytes, StreamError> {
    std::thread::sleep(Duration::from_millis(2));
    Ok(payload.clone())
}

#[test]
fn volunteer_dropping_mid_run_resumes_within_grace_without_a_crash() {
    let tcp = TcpConfig::local_test();
    let pando = Pando::new(PandoConfig::local_test().with_batch_size(4));
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tcp.clone()).unwrap();
    let addr = acceptor.local_addr();
    let server = acceptor.serve(&pando);

    // The flapping volunteer: a session transport whose link is severed by
    // the scripted Disconnect fault 80 ms in; the redial loop brings it
    // back well inside the 2 s grace window.
    let flappy_transport = ReconnectingTcpTransport::connect(
        addr,
        "flappy",
        tcp.clone(),
        ReconnectPolicy::local_test(),
    )
    .unwrap();
    let flappy = WorkerBuilder::new()
        .name("flappy")
        .heartbeats(true)
        .fault(FaultPlan::Disconnect {
            at: Duration::from_millis(80),
            down_for: Duration::from_millis(100),
        })
        .spawn(flappy_transport, slow_echo);
    let steady = WorkerBuilder::new().name("steady").heartbeats(true).spawn(
        ReconnectingTcpTransport::connect(addr, "steady", tcp, ReconnectPolicy::local_test())
            .unwrap(),
        slow_echo,
    );
    assert!(server.wait_for_volunteers(2, Duration::from_secs(10)), "both volunteers join");

    let tasks = 160u64;
    let output = pando
        .run(count(tasks).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .unwrap();

    // Exactly one output per input, in order: nothing lost to the flap and
    // nothing delivered twice (a duplicate would displace its successor).
    assert_eq!(output.len() as u64, tasks);
    for (i, payload) in output.iter().enumerate() {
        assert_eq!(payload.as_ref(), (i + 1).to_string().as_bytes(), "order survives the flap");
    }
    assert!(!flappy.join().crashed, "a resumed volunteer never reads as crashed");
    assert!(!steady.join().crashed);
    assert!(server.resumed() >= 1, "the flap must actually exercise the resume path");
    server.stop();
    server.join();
    pando.join_volunteers();
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.results_emitted, tasks);
    assert_eq!(
        stats.substreams_crashed, 0,
        "a disconnect resumed within the grace window must not fire the crash re-lend path"
    );
}

#[test]
fn volunteer_away_past_grace_is_reclassified_as_crashed_and_relent() {
    // A short grace window and a redial policy whose first attempt lands
    // long after it: the disconnect must expire into the crash verdict.
    let tcp = TcpConfig { reconnect_grace: Duration::from_millis(250), ..TcpConfig::local_test() };
    let lazy_redial = ReconnectPolicy {
        base: Duration::from_secs(2),
        cap: Duration::from_secs(2),
        max_attempts: 3,
        seed: 7,
    };
    let pando = Pando::new(PandoConfig::local_test().with_batch_size(4));
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tcp.clone()).unwrap();
    let addr = acceptor.local_addr();
    let server = acceptor.serve(&pando);

    let gone = WorkerBuilder::new()
        .name("gone")
        .heartbeats(true)
        .fault(FaultPlan::Disconnect {
            at: Duration::from_millis(60),
            down_for: Duration::from_secs(2),
        })
        .spawn(
            ReconnectingTcpTransport::connect(addr, "gone", tcp.clone(), lazy_redial).unwrap(),
            slow_echo,
        );
    let steady = WorkerBuilder::new().name("steady").heartbeats(true).spawn(
        ReconnectingTcpTransport::connect(addr, "steady", tcp, ReconnectPolicy::local_test())
            .unwrap(),
        slow_echo,
    );
    assert!(server.wait_for_volunteers(2, Duration::from_secs(10)), "both volunteers join");

    let tasks = 120u64;
    let output = pando
        .run(count(tasks).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .unwrap();
    assert_eq!(output.len() as u64, tasks);
    for (i, payload) in output.iter().enumerate() {
        assert_eq!(payload.as_ref(), (i + 1).to_string().as_bytes(), "order survives the crash");
    }
    assert!(!steady.join().crashed);
    drop(gone); // its redial budget plays out in the background
    server.stop();
    server.join();
    pando.join_volunteers();
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.results_emitted, tasks);
    assert_eq!(
        stats.substreams_crashed, 1,
        "a volunteer away past reconnect_grace must fire the crash re-lend path"
    );
    assert!(stats.relends >= 1, "values held by the expired session are re-lent");
}

#[test]
fn drop_link_on_a_session_transport_redials_and_resumes() {
    // Transport-level check without a fleet: sever the link, watch the
    // redial loop resume the same session token.
    let tcp = TcpConfig::local_test();
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tcp.clone()).unwrap();
    let addr = acceptor.local_addr();
    let acceptor = std::sync::Arc::new(acceptor);
    let accept_side = acceptor.clone();
    let pump = std::thread::spawn(move || {
        // Accept the initial join and then the resume; accept_session parks
        // resumes into the session table for us.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut joined = 0;
        let mut resumed = 0;
        let mut keep = Vec::new();
        while std::time::Instant::now() < deadline && (joined < 1 || resumed < 1) {
            match accept_side.accept_session() {
                Ok(Some(pando_core::transport::tcp::SessionEvent::Joined {
                    transport, ..
                })) => {
                    joined += 1;
                    keep.push(transport);
                }
                Ok(Some(pando_core::transport::tcp::SessionEvent::Resumed { .. })) => resumed += 1,
                Ok(Some(pando_core::transport::tcp::SessionEvent::Plain { .. })) => {}
                Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                Err(err) => panic!("handshake failed: {err}"),
            }
        }
        (joined, resumed, keep)
    });

    let client =
        ReconnectingTcpTransport::connect(addr, "yo-yo", tcp, ReconnectPolicy::local_test())
            .unwrap();
    let token_before = client.token();
    client.drop_link();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while client.is_reconnecting() {
        assert!(std::time::Instant::now() < deadline, "redial never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (joined, resumed, keep) = pump.join().unwrap();
    assert_eq!(joined, 1);
    assert_eq!(resumed, 1, "the redial presents the old token and resumes");
    assert_eq!(client.token(), token_before, "a resume keeps the session token");
    assert!(keep[0].is_peer_alive(), "the master-side session is live again");
    client.close();
}
