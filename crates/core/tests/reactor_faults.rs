//! Fault-tolerance coverage for the event-driven reactor path: volunteer
//! crashes mid-batch, clean channel closes during dispatch, and lender
//! shutdown must all wake the registered endpoints, terminate their drivers
//! and leave no reactor thread behind.
//!
//! The tests in this file share one process-wide thread counter, so they are
//! serialised through a mutex instead of relying on `--test-threads=1`.

use bytes::Bytes;
use pando_core::config::{PandoConfig, VolunteerBackend};
use pando_core::master::Pando;
use pando_core::protocol::Message;
use pando_core::worker::WorkerBuilder;
use pando_netsim::channel::RecvError;
use pando_netsim::fault::FaultPlan;
use pando_pull_stream::codec::StringCodec;
use pando_pull_stream::source::{count, infinite, Source, SourceExt};
use pando_pull_stream::{Answer, Request};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn reactor_config() -> PandoConfig {
    PandoConfig::local_test().with_backend(VolunteerBackend::Reactor).with_reactor_threads(2)
}

/// Number of live threads in this process (Linux); `None` elsewhere.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|line| line.strip_prefix("Threads:")?.trim().parse().ok())
}

/// Waits until the thread count drops back to at most `limit` (threads may
/// take a moment to unwind after their handles are joined).
fn assert_threads_back_to(limit: usize) {
    let Some(mut current) = thread_count() else {
        return; // not on Linux: the join-based assertions already ran
    };
    let deadline = Instant::now() + Duration::from_secs(5);
    while current > limit && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
        current = thread_count().unwrap_or(0);
    }
    assert!(current <= limit, "thread leak: {current} threads alive, expected at most {limit}");
}

#[allow(clippy::ptr_arg)] // must match Fn(&C::Task) with C::Task = String
fn echo(input: &String) -> Result<String, pando_pull_stream::StreamError> {
    Ok(input.clone())
}

fn numbers(n: u64) -> impl Source<String> + 'static {
    count(n).map_values(|v| v.to_string())
}

#[test]
fn volunteer_crash_mid_batch_is_recovered_on_the_reactor_path() {
    let _guard = SERIAL.lock();
    // A wide window so the crashing volunteer holds a whole batch in flight.
    let pando = Pando::new(reactor_config().with_batch_size(8));
    let crashing = WorkerBuilder::new().fault(FaultPlan::AfterTasks(3)).spawn_typed(
        pando.open_volunteer_channel(),
        StringCodec,
        echo,
    );
    let reliable =
        WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, echo);
    let output = pando.run_typed(StringCodec, numbers(100)).collect_values().unwrap();
    assert_eq!(
        output,
        (1..=100u64).map(|v| v.to_string()).collect::<Vec<_>>(),
        "results stay complete and ordered across the crash"
    );
    assert!(crashing.join().crashed);
    assert!(!reliable.join().crashed);
    pando.join_volunteers();
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.substreams_crashed, 1);
    assert!(stats.relends >= 1, "values held by the crashed volunteer are re-lent");
    let reactor = pando.reactor_stats().expect("reactor backend is active");
    assert_eq!(reactor.active, 0, "both drivers reached their terminal state");
    assert!(reactor.polls > 0 && reactor.wakeups > 0);
}

#[test]
fn clean_close_during_dispatch_completes_elsewhere() {
    let _guard = SERIAL.lock();
    let pando = Pando::new(reactor_config().with_batch_size(4));
    // A volunteer that answers its first task frame, then closes the channel
    // cleanly mid-run (the browser tab navigating away politely).
    let leaver_endpoint = pando.open_volunteer_channel();
    let leaver = std::thread::spawn(move || {
        let mut answered = 0u64;
        loop {
            match leaver_endpoint.recv() {
                Ok(Message::Task { seq, payload }) => {
                    let _ = leaver_endpoint.send(Message::TaskResult { seq, payload });
                    answered += 1;
                }
                Ok(Message::TaskBatch(records)) => {
                    let results = records
                        .iter()
                        .map(|r| pando_netsim::codec::Record::new(r.seq, r.payload.clone()))
                        .collect();
                    let _ = leaver_endpoint.send(Message::ResultBatch(results));
                    answered += records.len() as u64;
                }
                Ok(_) => {}
                Err(RecvError::Timeout) | Err(RecvError::Empty) => continue,
                Err(_) => break,
            }
            if answered >= 2 {
                leaver_endpoint.send(Message::Goodbye).ok();
                leaver_endpoint.close();
                break;
            }
        }
        answered
    });
    let stayer =
        WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, echo);
    let output = pando.run_typed(StringCodec, numbers(60)).collect_values().unwrap();
    assert_eq!(output.len(), 60, "the leaver's unfinished values complete elsewhere");
    let answered = leaver.join().unwrap();
    assert!(answered >= 2);
    assert!(!stayer.join().crashed);
    pando.join_volunteers();
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.results_emitted, 60);
    // A clean goodbye ends sub-streams gracefully, never as a crash. The
    // stayer's driver may legitimately complete more than one sub-stream:
    // when its own lender shard drains it re-lends itself onto the shard
    // still holding the leaver's unfinished values (shard hopping).
    assert_eq!(stats.substreams_crashed, 0);
    assert!(
        stats.substreams_completed >= 2,
        "both volunteers end gracefully (completed {})",
        stats.substreams_completed
    );
}

#[test]
fn lender_shutdown_wakes_every_driver_and_reaps_the_pool() {
    let _guard = SERIAL.lock();
    let baseline = thread_count().unwrap_or(0);
    let volunteers = 8;
    {
        let pando = Pando::new(reactor_config().with_reactor_threads(3));
        let workers: Vec<_> = (0..volunteers)
            .map(|_| {
                WorkerBuilder::new()
                    .spawn(pando.open_volunteer_channel(), |payload: &Bytes| Ok(payload.clone()))
            })
            .collect();
        // An endless input: the run can only stop through the shutdown.
        let mut output = pando.run(infinite(|i| Bytes::from(i.to_string().into_bytes())));
        for _ in 0..40 {
            assert!(matches!(output.pull(Request::Ask), Answer::Value(_)));
        }
        // Terminating the output shuts the lender down; every driver must be
        // woken (they are idle or starved at this point), close its channel
        // and reach its terminal state — otherwise these joins hang.
        assert!(matches!(output.pull(Request::Abort), Answer::Done));
        pando.join_volunteers();
        for worker in workers {
            assert!(!worker.join().crashed, "workers observe a clean close");
        }
        let reactor = pando.reactor_stats().expect("reactor backend is active");
        assert_eq!(reactor.active, 0);
        assert_eq!(reactor.registered, volunteers as u64);
        // Dropping the deployment joins the reactor pool and the input pump.
    }
    assert_threads_back_to(baseline);
}

#[test]
fn ten_volunteer_fan_out_keeps_results_demultiplexed() {
    let _guard = SERIAL.lock();
    // Seq-checked demultiplexing across many concurrent reactor drivers: the
    // result of value v must be f(v), in order, with every worker involved
    // at most once per value.
    let pando = Pando::new(reactor_config().with_batch_size(4).with_reactor_threads(4));
    let workers: Vec<_> = (0..10)
        .map(|_| {
            WorkerBuilder::new().spawn_typed(
                pando.open_volunteer_channel(),
                StringCodec,
                |s: &String| Ok(format!("r{s}")),
            )
        })
        .collect();
    let output = pando.run_typed(StringCodec, numbers(500)).collect_values().unwrap();
    let expected: Vec<String> = (1..=500u64).map(|v| format!("r{v}")).collect();
    assert_eq!(output, expected);
    let total: u64 = workers.into_iter().map(|w| w.join().processed).sum();
    assert_eq!(total, 500, "every value processed exactly once");
    pando.join_volunteers();
}
