//! Determinism properties of the virtual-clock fleet simulator
//! ([`pando_core::sim::simulate_fleet`]): for *any* seed, fleet shape and
//! crash fraction, two runs with the same parameters must produce
//! byte-identical canonical traces — identical event logs, output order,
//! `ThroughputMeter` rows, shard claim logs and reactor counters — and the
//! merged output must always be the complete input, in input order, no
//! matter how the seed-derived fault schedule crashes the fleet.

use pando_core::sim::{simulate_fleet, FleetParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ byte-identical everything, across random fleet shapes
    /// and fault pressures.
    #[test]
    fn same_seed_runs_are_byte_identical(
        seed in 0u64..1_000_000,
        volunteers in 1usize..12,
        tasks in 1u64..96,
        crash_pct in 0u32..91,
    ) {
        let params = FleetParams::new(seed, volunteers, tasks)
            .with_crash_fraction(f64::from(crash_pct) / 100.0);
        let a = simulate_fleet(&params);
        let b = simulate_fleet(&params);
        prop_assert_eq!(a.canonical_trace(), b.canonical_trace());
        prop_assert_eq!(a.output_digest, b.output_digest);
        prop_assert_eq!(&a.output_order, &b.output_order);
        prop_assert_eq!(&a.claim_log, &b.claim_log);
        prop_assert_eq!(&a.meter_rows, &b.meter_rows);
        prop_assert_eq!(&a.shard_rows, &b.shard_rows);
        prop_assert_eq!(a.reactor.polls, b.reactor.polls);
        prop_assert_eq!(a.reactor.wakeups, b.reactor.wakeups);
    }

    /// Whatever the fault schedule does, every input value is emitted
    /// exactly once and in global input order (crash recovery re-lends,
    /// the merge stage reorders).
    #[test]
    fn output_is_complete_and_ordered_under_any_fault_schedule(
        seed in 0u64..1_000_000,
        volunteers in 1usize..10,
        tasks in 1u64..80,
        crash_pct in 0u32..91,
    ) {
        let params = FleetParams::new(seed, volunteers, tasks)
            .with_crash_fraction(f64::from(crash_pct) / 100.0);
        let report = simulate_fleet(&params);
        let expected: Vec<u64> = (0..tasks).collect();
        prop_assert_eq!(report.output_order, expected);
        // The meter's task counts must account for every emitted value
        // (late results of crashed volunteers may process a value twice on
        // the device side, but accepted results equal the stream length).
        let accepted: u64 = report
            .shard_rows
            .iter()
            .map(|row| {
                row.rsplit("results=").next().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0)
            })
            .sum();
        prop_assert_eq!(accepted, tasks);
    }

    /// Any random disconnect/reconnect schedule (links pausing and coming
    /// back, the sim twin of a session volunteer resuming within its grace
    /// window) yields the same ordered output and digest as the fault-free
    /// run, and never fires the crash re-lend path.
    #[test]
    fn link_flaps_never_lose_reorder_or_crash(
        seed in 0u64..1_000_000,
        volunteers in 1usize..10,
        tasks in 1u64..80,
        raw_flaps in proptest::collection::vec(0u64..1_000_000_000_000, 0..6),
    ) {
        // Decode each raw draw into (volunteer, at_us, down_for_us): the
        // in-tree proptest stand-in has no tuple strategies.
        let flaps: Vec<(usize, u64, u64)> = raw_flaps
            .into_iter()
            .map(|raw| {
                let v = (raw % volunteers as u64) as usize;
                let at_us = (raw / 7) % 40_000;
                let down_for_us = 100 + (raw / 13) % 30_000;
                (v, at_us, down_for_us)
            })
            .collect();
        let base = FleetParams::new(seed, volunteers, tasks).with_crash_fraction(0.0);
        let calm = simulate_fleet(&base);
        let flapped = simulate_fleet(&base.clone().with_flaps(flaps));
        let expected: Vec<u64> = (0..tasks).collect();
        prop_assert_eq!(&flapped.output_order, &expected);
        prop_assert_eq!(flapped.output_order, calm.output_order);
        prop_assert_eq!(flapped.output_digest, calm.output_digest);
        prop_assert_eq!(flapped.crashed, 0);
        prop_assert_eq!(flapped.reactor.crash_relends, 0);
    }
}

/// A pinned-seed regression: the canonical trace of seed 7 must not change
/// silently across commits. Only structural properties are pinned (not the
/// full byte string, which legitimate protocol changes may alter): if this
/// fails loudly on an intentional change, re-pin the numbers alongside it.
#[test]
fn pinned_seed_shape_regression() {
    let report = simulate_fleet(&FleetParams::new(7, 8, 64));
    assert_eq!(report.output_order.len(), 64);
    assert_eq!(report.params.volunteers, 8);
    assert!(!report.claim_log.is_empty());
    assert_eq!(report.meter_rows.len(), 9, "one meter row per volunteer plus the scheduler row");
    // And the run is idempotent, byte for byte.
    let again = simulate_fleet(&FleetParams::new(7, 8, 64));
    assert_eq!(report.canonical_trace(), again.canonical_trace());
}
