//! Property-based round-trip tests for the binary codec layer: arbitrary
//! binary payloads — embedded newlines, NUL bytes, invalid UTF-8, empty and
//! maximum-size frames — must survive `Message` encode/decode, the batched
//! record framing, and a jittery simulated channel, byte for byte. The
//! seed's string protocol could not represent most of these payloads at all.

use bytes::Bytes;
use pando_core::protocol::Message;
use pando_netsim::channel::{pair, ChannelConfig};
use pando_netsim::codec::{Record, MAX_FRAME_LEN};
use proptest::prelude::*;
use std::time::Duration;

/// Arbitrary binary payloads, biased towards the bytes that broke text
/// protocols: separators, NULs and non-UTF-8 lead bytes.
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0usize..256).prop_map(|b| b as u8),
            1 => Just(b'\n'),
            1 => Just(0u8),
            1 => Just(0xffu8),
        ],
        0..200,
    )
}

fn seq_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => (0usize..1_000_000).prop_map(|s| s as u64),
        1 => Just(0u64),
        1 => Just(u64::MAX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single-record messages round-trip for any seq and any payload bytes.
    #[test]
    fn single_messages_round_trip(seq in seq_strategy(), payload in payload_strategy()) {
        for message in [
            Message::Task { seq, payload: Bytes::from(payload.clone()) },
            Message::TaskResult { seq, payload: Bytes::from(payload.clone()) },
            Message::TaskError { seq, message: Bytes::from(payload.clone()) },
        ] {
            let frame = message.encode().expect("within frame limit");
            prop_assert_eq!(frame.len(), message.wire_size());
            prop_assert_eq!(Message::decode(&frame).expect("decodes"), message);
        }
    }

    /// Batched frames round-trip for any record set, and decoding is
    /// zero-copy into the frame allocation.
    #[test]
    fn batches_round_trip(
        seqs in proptest::collection::vec(seq_strategy(), 0..12),
        payloads in proptest::collection::vec(payload_strategy(), 0..12),
    ) {
        let records: Vec<Record> = seqs
            .iter()
            .zip(&payloads)
            .map(|(seq, payload)| Record::new(*seq, Bytes::from(payload.clone())))
            .collect();
        for message in [
            Message::TaskBatch(records.clone()),
            Message::ResultBatch(records.clone()),
        ] {
            let frame = message.encode().expect("within frame limit");
            prop_assert_eq!(frame.len(), message.wire_size());
            let decoded = Message::decode(&frame).expect("decodes");
            prop_assert_eq!(decoded.record_count(), records.len() as u64);
            prop_assert_eq!(decoded, message);
        }
    }

    /// Messages survive a jittery, bandwidth-limited channel in order and
    /// intact — the transport the real dispatcher runs over.
    #[test]
    fn messages_survive_a_jittery_channel(
        payloads in proptest::collection::vec(payload_strategy(), 1..8),
        seed in 0u64..1_000,
    ) {
        let config = ChannelConfig {
            latency: Duration::from_micros(100),
            jitter: Duration::from_micros(300),
            bandwidth_bytes_per_sec: Some(50_000_000),
            ..ChannelConfig::instant()
        }
        .with_seed(seed);
        let (master, worker) = pair::<Message>(config);
        let sent: Vec<Message> = payloads
            .iter()
            .enumerate()
            .map(|(i, payload)| {
                if i % 2 == 0 {
                    Message::Task { seq: i as u64, payload: Bytes::from(payload.clone()) }
                } else {
                    Message::TaskBatch(vec![
                        Record::new(i as u64, Bytes::from(payload.clone())),
                        Record::new(i as u64 + 1, Bytes::new()),
                    ])
                }
            })
            .collect();
        for message in &sent {
            let size = message.wire_size();
            let count = message.record_count();
            master
                .send_records_with_size(message.clone(), size, count)
                .expect("channel is open");
        }
        for message in &sent {
            let received = worker.recv().expect("message arrives");
            prop_assert_eq!(&received, message);
        }
        master.close();
    }
}

/// The largest payload a frame can carry round-trips; one byte more is
/// rejected at encode time instead of corrupting the length field.
#[test]
fn max_size_frames_round_trip_and_overflow_is_rejected() {
    let max_payload = MAX_FRAME_LEN - 8; // body = 8-byte seq header + payload
    let message = Message::Task { seq: 42, payload: Bytes::from(vec![0xabu8; max_payload]) };
    let frame = message.encode().expect("exactly at the limit");
    assert_eq!(frame.len(), message.wire_size());
    assert_eq!(Message::decode(&frame).expect("decodes"), message);

    let too_big = Message::Task { seq: 42, payload: Bytes::from(vec![0u8; MAX_FRAME_LEN + 1]) };
    assert!(too_big.encode().unwrap_err().is_protocol());
}

/// Empty payloads are valid tasks, results and batch records.
#[test]
fn empty_payloads_round_trip() {
    for message in [
        Message::Task { seq: 0, payload: Bytes::new() },
        Message::TaskResult { seq: 0, payload: Bytes::new() },
        Message::TaskBatch(vec![]),
        Message::TaskBatch(vec![Record::new(0, Bytes::new())]),
    ] {
        let frame = message.encode().unwrap();
        assert_eq!(Message::decode(&frame).unwrap(), message);
    }
}
