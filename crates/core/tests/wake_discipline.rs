//! Wake-discipline properties of the work-conserving reactor: bounded
//! starved-kicks (`min(parked, shard lendable depth)` wakes per lender
//! change, heartbeat backstop as the liveness net) must never strand a
//! lendable value while a driver is parked, must preserve the exact output
//! order of the broadcast discipline, and must keep the reactor-poll count
//! of a large fleet under a committed budget.

use pando_core::sim::{simulate_fleet, FleetParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Liveness under random crash schedules: with bounded wakes on (the
    /// default), every input value is emitted exactly once and in global
    /// input order — a stranded lendable value (kicked nobody, backstop
    /// missed) would wedge the sim or drop the value, failing both asserts.
    #[test]
    fn bounded_wakes_never_strand_a_lendable_value(
        seed in 0u64..1_000_000,
        volunteers in 1usize..10,
        tasks in 1u64..80,
        crash_pct in 0u32..91,
    ) {
        let params = FleetParams::new(seed, volunteers, tasks)
            .with_crash_fraction(f64::from(crash_pct) / 100.0);
        prop_assert!(params.bounded_wakes, "bounded wakes must be the default");
        let report = simulate_fleet(&params);
        let expected: Vec<u64> = (0..tasks).collect();
        prop_assert_eq!(report.output_order, expected);
    }

    /// A/B against the broadcast discipline: same seed, bounded off vs on
    /// must produce the identical output order and digest — wake-limiting
    /// changes *when* parked drivers run, never *what* the stream emits.
    #[test]
    fn bounded_and_broadcast_kicks_emit_identical_output(
        seed in 0u64..1_000_000,
        volunteers in 1usize..8,
        tasks in 1u64..64,
        crash_pct in 0u32..76,
    ) {
        let params = FleetParams::new(seed, volunteers, tasks)
            .with_crash_fraction(f64::from(crash_pct) / 100.0);
        let bounded = simulate_fleet(&params);
        let broadcast = simulate_fleet(&params.clone().with_bounded_wakes(false));
        prop_assert_eq!(&bounded.output_order, &broadcast.output_order);
        prop_assert_eq!(bounded.output_digest, broadcast.output_digest);
    }
}

/// A starved-heavy fleet (many more volunteers than tasks) must exercise the
/// kick budget: some wakes sent, some suppressed, and the wasted-poll
/// counter live. Deterministic per seed, so plain asserts.
#[test]
fn kick_budget_counters_are_live_when_drivers_starve() {
    let report = simulate_fleet(&FleetParams::new(11, 48, 24));
    assert_eq!(report.output_order, (0..24).collect::<Vec<u64>>());
    assert!(report.reactor.kicks_sent > 0, "starved drivers must be re-woken via kicks");
    assert!(
        report.reactor.kicks_suppressed > 0,
        "with 48 volunteers over 24 tasks the budget must leave drivers parked \
         (sent={} suppressed={})",
        report.reactor.kicks_sent,
        report.reactor.kicks_suppressed
    );
    let trace = report.canonical_trace();
    assert!(trace.contains("wasted_polls="), "canonical trace carries the new counters");
    assert!(
        report.meter_rows.iter().any(|row| row.starts_with("meter scheduler ")),
        "the meter surfaces scheduler counters: {:?}",
        report.meter_rows
    );
}

/// Bounded wakes must strictly beat broadcast on reactor polls for a fleet
/// with real starvation pressure, at unchanged output.
#[test]
fn bounded_wakes_cut_reactor_polls() {
    let params = FleetParams::new(3, 64, 256);
    let bounded = simulate_fleet(&params);
    let broadcast = simulate_fleet(&params.clone().with_bounded_wakes(false));
    assert_eq!(bounded.output_order, broadcast.output_order);
    assert!(
        bounded.reactor.polls < broadcast.reactor.polls,
        "bounded {} !< broadcast {}",
        bounded.reactor.polls,
        broadcast.reactor.polls
    );
}

/// Committed poll budget for a large fleet: the pre-bounded reactor spent
/// 169,781 polls on this shape (seed 42, 1k volunteers, 5k tasks); the
/// work-conserving reactor spends ~20k. Budget 42k = a 4× floor on the win,
/// with headroom for legitimate scheduling changes. The 10k-volunteer budget
/// runs in release mode via `examples/sim_determinism.rs` (`SIM_MAX_POLLS`)
/// in CI.
#[test]
fn thousand_volunteer_fleet_stays_under_the_poll_budget() {
    let report = simulate_fleet(&FleetParams::new(42, 1000, 5000));
    assert_eq!(report.output_order.len(), 5000);
    assert!(
        report.reactor.polls < 42_000,
        "reactor polls regressed past the committed budget: {} >= 42000",
        report.reactor.polls
    );
}
