//! Pando — personal volunteer computing (Lavoie et al., Middleware 2019)
//! reproduced in Rust.
//!
//! This facade crate re-exports the workspace's sub-crates under one name and
//! owns the root-level `tests/` (cross-crate integration and experiment shape
//! checks) and `examples/` (the paper's applications end to end):
//!
//! * [`pull_stream`] — the pull-stream protocol, StreamLender, Limiter and
//!   StubbornQueue (the paper's coordination substrate);
//! * [`netsim`] — simulated WebSocket/WebRTC-like channels, heartbeats,
//!   signalling and fault injection;
//! * [`devices`] — device profiles calibrated to the paper's Table 2;
//! * [`workloads`] — the six evaluated compute-bound applications;
//! * [`core`] — the master/worker coordination system;
//! * [`bench`](mod@bench) — the harness regenerating the paper's tables and
//!   figures.
//!
//! Start from [`core::master::Pando`] or run `cargo run --example quickstart`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pando_bench as bench;
pub use pando_core as core;
pub use pando_devices as devices;
pub use pando_netsim as netsim;
pub use pando_pull_stream as pull_stream;
pub use pando_workloads as workloads;
