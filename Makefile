# Local invocations matching the CI jobs in .github/workflows/ci.yml —
# `make lint test` before pushing reproduces what CI will run.

.PHONY: all build test lint fmt doc bench bench-run scale scale-sharded sim scenarios tcp-demo tcp-demo-flap clean

all: lint build test doc

build:
	cargo build --release --workspace --all-targets

test:
	cargo test -q --workspace

lint:
	cargo fmt --all -- --check
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

# The API docs must stay warning-free (CI denies rustdoc warnings).
doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# CI only checks that benches compile; `make bench-run` executes them.
bench:
	cargo bench --workspace --no-run

bench-run:
	cargo bench --workspace

# The 10k-volunteer reactor demonstration: one master, a fixed thread pool,
# results seq-checked. CI runs the same example at 1k (its default).
scale:
	SCALE_VOLUNTEERS=10000 cargo run --release --example scale_smoke

# Same 10k-volunteer run with dispatch sharded over four lender instances
# (four locks, four input pumps), under the same wall-clock guard.
scale-sharded:
	SCALE_VOLUNTEERS=10000 SCALE_SHARDS=4 cargo run --release --example scale_smoke

# The deterministic fleet simulator at 10k volunteers: the same reactor
# stack on a virtual clock, run twice from one seed and the canonical event
# traces compared byte for byte. Same target CI runs.
sim:
	cargo run --release --example sim_determinism

# The golden-trace regression suite: every scenarios/*.toml script runs
# twice on the virtual clock, is byte-compared against itself, checked
# against its [expect] table, and diffed against the committed trace in
# scenarios/golden/. After an intentional behaviour change, re-bless with
# `make scenarios BLESS=1` and commit the golden diff for review.
scenarios:
	BLESS=$(BLESS) cargo run --release --example scenario_run

# The fleet across OS processes: one master listening on localhost TCP, a
# 64-volunteer fleet split over one process that crashes abruptly mid-run
# (exit 2 — expected) and one that survives. The master must detect the
# crash through the socket, re-lend, and still produce complete in-order
# output within the budget — while TCP_THREAD_CENSUS=1 asserts its whole
# transport side runs on poller_threads + 1 OS threads, not 2 per volunteer.
tcp-demo:
	cargo build --release --example tcp_master --example tcp_volunteer
	rm -f target/tcp-demo.addr
	PANDO_TCP_ADDR_FILE=target/tcp-demo.addr TCP_TASKS=2000 TCP_BUDGET_SECS=120 \
		TCP_MIN_VOLUNTEERS=64 TCP_THREAD_CENSUS=1 \
		target/release/examples/tcp_master & master=$$!; \
	PANDO_TCP_ADDR_FILE=target/tcp-demo.addr TCP_WORKERS=16 \
		TCP_NAME_PREFIX=doomed TCP_CRASH_AFTER=200 \
		target/release/examples/tcp_volunteer & crasher=$$!; \
	PANDO_TCP_ADDR_FILE=target/tcp-demo.addr TCP_WORKERS=48 \
		TCP_NAME_PREFIX=steady \
		target/release/examples/tcp_volunteer & steady=$$!; \
	wait $$master; status=$$?; \
	wait $$crasher $$steady 2>/dev/null; \
	rm -f target/tcp-demo.addr; \
	exit $$status

# The flapping-volunteer variant: one master and a single 32-volunteer
# process that joins through resumable sessions and abruptly severs every
# socket mid-run (TCP_DROP_AFTER), then redials with backoff and resumes
# under its old session tokens. The master must ride the flap out inside
# its reconnect_grace window: all 32 sessions resumed (TCP_MIN_RESUMED),
# zero crash re-lends (TCP_EXPECT_CRASHED=0), output complete and in order.
tcp-demo-flap:
	cargo build --release --example tcp_master --example tcp_volunteer
	rm -f target/tcp-demo-flap.addr
	PANDO_TCP_ADDR_FILE=target/tcp-demo-flap.addr TCP_TASKS=2000 TCP_BUDGET_SECS=120 \
		TCP_MIN_VOLUNTEERS=32 TCP_THREAD_CENSUS=1 \
		TCP_EXPECT_CRASHED=0 TCP_MIN_RESUMED=32 \
		target/release/examples/tcp_master & master=$$!; \
	PANDO_TCP_ADDR_FILE=target/tcp-demo-flap.addr TCP_WORKERS=32 \
		TCP_NAME_PREFIX=flappy TCP_DROP_AFTER=300 \
		target/release/examples/tcp_volunteer & flappy=$$!; \
	wait $$master; status=$$?; \
	wait $$flappy 2>/dev/null; \
	rm -f target/tcp-demo-flap.addr; \
	exit $$status

clean:
	cargo clean
