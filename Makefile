# Local invocations matching the CI jobs in .github/workflows/ci.yml —
# `make lint test` before pushing reproduces what CI will run.

.PHONY: all build test lint fmt doc bench bench-run scale scale-sharded sim clean

all: lint build test doc

build:
	cargo build --release --workspace --all-targets

test:
	cargo test -q --workspace

lint:
	cargo fmt --all -- --check
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

# The API docs must stay warning-free (CI denies rustdoc warnings).
doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# CI only checks that benches compile; `make bench-run` executes them.
bench:
	cargo bench --workspace --no-run

bench-run:
	cargo bench --workspace

# The 10k-volunteer reactor demonstration: one master, a fixed thread pool,
# results seq-checked. CI runs the same example at 1k (its default).
scale:
	SCALE_VOLUNTEERS=10000 cargo run --release --example scale_smoke

# Same 10k-volunteer run with dispatch sharded over four lender instances
# (four locks, four input pumps), under the same wall-clock guard.
scale-sharded:
	SCALE_VOLUNTEERS=10000 SCALE_SHARDS=4 cargo run --release --example scale_smoke

# The deterministic fleet simulator at 10k volunteers: the same reactor
# stack on a virtual clock, run twice from one seed and the canonical event
# traces compared byte for byte. Same target CI runs.
sim:
	cargo run --release --example sim_determinism

clean:
	cargo clean
