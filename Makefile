# Local invocations matching the CI jobs in .github/workflows/ci.yml —
# `make lint test` before pushing reproduces what CI will run.

.PHONY: all build test lint fmt doc bench bench-run clean

all: lint build test doc

build:
	cargo build --release --workspace --all-targets

test:
	cargo test -q --workspace

lint:
	cargo fmt --all -- --check
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

# The API docs must stay warning-free (CI denies rustdoc warnings).
doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# CI only checks that benches compile; `make bench-run` executes them.
bench:
	cargo bench --workspace --no-run

bench-run:
	cargo bench --workspace

clean:
	cargo clean
